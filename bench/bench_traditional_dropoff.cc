/**
 * @file
 * Section 5.1's comparison experiment: "we also ran an experiment
 * assuming the traditional approach to handling emergencies, i.e. we
 * turned servers off when the temperature of their CPUs crossed
 * T_r^CPU ... Overall, the traditional system dropped 14% of the
 * requests in our trace." Same trace, same emergencies, three
 * policies side by side.
 */

#include <cstdio>

#include "bench_util.hh"
#include "freon/experiment.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;

    banner("Section 5.1", "traditional red-line-only policy vs Freon "
                          "vs no management");

    std::printf("policy,drop_rate,dropped,completed,servers_off,"
                "weight_adjustments,m1_peak_C,m3_peak_C,"
                "mean_latency_ms,p99_latency_ms\n");
    double traditional_rate = 0.0;
    double freon_rate = 0.0;
    for (auto [policy, label] :
         {std::pair{freon::PolicyKind::None, "none"},
          std::pair{freon::PolicyKind::FreonBase, "freon"},
          std::pair{freon::PolicyKind::Traditional, "traditional"}}) {
        freon::ExperimentConfig config;
        config.policy = policy;
        config.workload.duration = 2000.0;
        config.addPaperEmergencies();
        freon::ExperimentResult result = freon::runExperiment(config);
        std::printf("%s,%.4f,%llu,%llu,%llu,%llu,%.2f,%.2f,%.1f,%.1f\n",
                    label, result.dropRate,
                    static_cast<unsigned long long>(result.dropped),
                    static_cast<unsigned long long>(result.completed),
                    static_cast<unsigned long long>(
                        result.serversTurnedOff),
                    static_cast<unsigned long long>(
                        result.weightAdjustments),
                    result.peakCpuTemperature.at("m1"),
                    result.peakCpuTemperature.at("m3"),
                    1000.0 * result.meanLatency,
                    1000.0 * result.p99Latency);
        if (policy == freon::PolicyKind::Traditional)
            traditional_rate = result.dropRate;
        if (policy == freon::PolicyKind::FreonBase)
            freon_rate = result.dropRate;
    }

    summary("traditional_drop_rate", traditional_rate);
    summary("freon_drop_rate", freon_rate);
    paperClaim("traditional_drop_rate",
               "0.14 (m1 off at ~1440 s, m3 just before 1500 s)");
    paperClaim("freon_drop_rate", "0 (no requests dropped)");
    return 0;
}
