/**
 * @file
 * Cost of the metrics hot path. The registry's promise is that
 * instrumenting a daemon's inner loops is effectively free: a counter
 * increment is one relaxed fetch_add (scripts/run_bench_metrics.sh
 * gates it under 50 ns), a histogram observation is a short bucket
 * scan plus two relaxed atomics, and the only mutex in the subsystem
 * is taken at registration/render time — never on the increment path.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "metrics/metrics.hh"

namespace {

using namespace mercury;

/** The gated number: one uncontended counter increment. */
void
BM_CounterInc(benchmark::State &state)
{
    metrics::Counter counter;
    for (auto _ : state)
        counter.inc();
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterInc);

/**
 * The same increment with every thread hammering one cache line —
 * worst case for a daemon whose request threads share a counter.
 */
void
BM_CounterIncContended(benchmark::State &state)
{
    static metrics::Counter counter;
    for (auto _ : state)
        counter.inc();
    if (state.thread_index() == 0)
        benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncContended)->Threads(4)->UseRealTime();

void
BM_GaugeSet(benchmark::State &state)
{
    metrics::Gauge gauge;
    double value = 0.0;
    for (auto _ : state) {
        gauge.set(value);
        value += 1.0;
    }
    benchmark::DoNotOptimize(gauge.value());
}
BENCHMARK(BM_GaugeSet);

/** One observation into the 24-bucket latency histogram. */
void
BM_HistogramObserve(benchmark::State &state)
{
    metrics::Histogram hist(metrics::Histogram::latencyBounds());
    double value = 1e-6;
    for (auto _ : state) {
        hist.observe(value);
        value = value < 1.0 ? value * 1.7 : 1e-6; // walk the buckets
    }
    benchmark::DoNotOptimize(hist.snapshot().count);
}
BENCHMARK(BM_HistogramObserve);

/**
 * Reading a snapshot (what the RPC handler and the Prometheus writer
 * do) while nobody is writing: a linear copy of the bucket array.
 */
void
BM_HistogramSnapshot(benchmark::State &state)
{
    metrics::Histogram hist(metrics::Histogram::latencyBounds());
    for (int i = 0; i < 1000; ++i)
        hist.observe(1e-4 * (i % 100 + 1));
    for (auto _ : state) {
        auto snap = hist.snapshot();
        benchmark::DoNotOptimize(snap.count);
    }
}
BENCHMARK(BM_HistogramSnapshot);

/**
 * Name lookup through the registry mutex. Two orders of magnitude
 * slower than inc() — the number that justifies "look up once at
 * init, keep the pointer" as the instrumentation idiom.
 */
void
BM_RegistryCounterLookup(benchmark::State &state)
{
    metrics::Registry registry;
    registry.counter("requests_total");
    for (auto _ : state)
        benchmark::DoNotOptimize(registry.counter("requests_total"));
}
BENCHMARK(BM_RegistryCounterLookup);

/** Full text render of a realistically sized daemon registry. */
void
BM_RegistryRenderSummary(benchmark::State &state)
{
    metrics::Registry registry;
    for (int i = 0; i < 30; ++i)
        registry.counter("counter_" + std::to_string(i))->inc(i);
    for (int i = 0; i < 4; ++i) {
        auto *hist =
            registry.histogram("hist_" + std::to_string(i),
                               metrics::Histogram::latencyBounds());
        for (int j = 0; j < 100; ++j)
            hist->observe(1e-4 * (j + 1));
    }
    for (auto _ : state) {
        std::string text = registry.renderSummary();
        benchmark::DoNotOptimize(text.data());
    }
}
BENCHMARK(BM_RegistryRenderSummary);

} // namespace

BENCHMARK_MAIN();
