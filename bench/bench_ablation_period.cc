/**
 * @file
 * Ablation: tempd's monitoring period (paper: one minute). Section 4.1
 * warns that "an intense thermal emergency may cause a temperature
 * that is just below T_h to increase by more than T_r - T_h in one
 * minute" — slower monitoring risks red-lining, faster monitoring
 * costs communication. The sweep shows where the cliff sits.
 */

#include <cstdio>

#include "bench_util.hh"
#include "freon/experiment.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;

    banner("Ablation", "tempd monitoring period on the Figure 11 "
                       "scenario (T_r - T_h = 2 degC)");

    std::printf("period_s,m1_peak_C,adjustments,drops,servers_off,"
                "redlined\n");
    for (double period : {15.0, 30.0, 60.0, 120.0, 240.0, 480.0}) {
        freon::ExperimentConfig config;
        config.policy = freon::PolicyKind::FreonBase;
        config.workload.duration = 2000.0;
        config.addPaperEmergencies();
        config.freon.tempdPeriodSeconds = period;
        freon::ExperimentResult result = freon::runExperiment(config);
        bool redlined = result.serversTurnedOff > 0;
        std::printf("%.0f,%.2f,%llu,%llu,%llu,%s\n", period,
                    result.peakCpuTemperature.at("m1"),
                    static_cast<unsigned long long>(
                        result.weightAdjustments),
                    static_cast<unsigned long long>(result.dropped),
                    static_cast<unsigned long long>(
                        result.serversTurnedOff),
                    redlined ? "yes" : "no");
    }
    paperClaim("period", "1 minute suffices for these emergencies; "
                         "T_h must sit far enough below T_r for the "
                         "chosen period");
    return 0;
}
