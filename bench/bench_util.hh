/**
 * @file
 * Shared helpers for the figure-reproduction benches: consistent
 * headers, CSV emission at a reduced sample rate, and paper-vs-
 * measured summary lines. Every bench prints
 *
 *   # <figure id>: <description>
 *   <CSV series>
 *   SUMMARY <key> = <value>
 *   PAPER   <key> = <value>      (the published claim, for comparison)
 */

#ifndef MERCURY_BENCH_BENCH_UTIL_HH
#define MERCURY_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace mercury {
namespace bench {

/** Print the bench banner. */
inline void
banner(const std::string &figure, const std::string &description)
{
    std::printf("# %s: %s\n", figure.c_str(), description.c_str());
}

/** Print one measured summary value. */
inline void
summary(const std::string &key, double value)
{
    std::printf("SUMMARY %s = %.4g\n", key.c_str(), value);
}

inline void
summary(const std::string &key, const std::string &value)
{
    std::printf("SUMMARY %s = %s\n", key.c_str(), value.c_str());
}

/** Print the corresponding claim from the paper. */
inline void
paperClaim(const std::string &key, const std::string &value)
{
    std::printf("PAPER   %s = %s\n", key.c_str(), value.c_str());
}

/**
 * Emit aligned series as CSV, sampling every @p stride-th point of
 * the first series (the figures have thousands of samples; the CSV
 * stays plottable without drowning the terminal).
 */
inline void
emitSeries(const std::vector<const TimeSeries *> &series, size_t stride)
{
    if (series.empty() || series.front()->empty())
        return;
    std::printf("time_s");
    for (const TimeSeries *ts : series)
        std::printf(",%s", ts->name().c_str());
    std::printf("\n");
    const TimeSeries &base = *series.front();
    for (size_t i = 0; i < base.size(); i += stride) {
        double t = base.timeAt(i);
        std::printf("%g", t);
        for (const TimeSeries *ts : series)
            std::printf(",%.3f", ts->sampleAt(t));
        std::printf("\n");
    }
}

} // namespace bench
} // namespace mercury

#endif // MERCURY_BENCH_BENCH_UTIL_HH
