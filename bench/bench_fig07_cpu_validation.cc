/**
 * @file
 * Figure 7: "Real-system CPU air validation."
 *
 * After the calibration phase, *no parameters are adjusted*: Mercury
 * runs the challenging 5 000 s benchmark that exercises the CPU and
 * disk simultaneously with rapidly varying utilizations, and its
 * CPU-air series is compared against the reference machine. The paper
 * reports agreement within 1 degC at all times — better than its real
 * thermometers' 1.5 degC accuracy.
 */

#include <cstdio>

#include "bench_util.hh"
#include "calib/validation.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;
    using namespace mercury::calib;

    banner("Figure 7", "validation: CPU air on the mixed 5000 s "
                       "benchmark, calibrated inputs frozen");

    refmodel::ReferenceConfig reference_config;
    CalibrationResult calibration =
        calibrateTable1AgainstReference(reference_config, true);

    // The validation run uses *noiseless* truth as the comparison
    // target (the paper compares against its sensors; we report both).
    refmodel::ReferenceConfig truth_config = reference_config;
    truth_config.sensorNoiseStddev = 0.0;
    truth_config.sensorQuantization = 0.0;
    truth_config.sensorLagSeconds = 0.0;

    std::vector<std::pair<std::string, Waveform>> loads{
        {"cpu", validationCpuWaveform()},
        {"disk", validationDiskWaveform()}};
    ReferenceRun truth = runReference(truth_config, kValidationDuration,
                                      loads, {"cpu_air"}, false);
    ReferenceRun sensed = runReference(reference_config,
                                       kValidationDuration, loads,
                                       {"cpu_air"}, true);

    Experiment experiment;
    experiment.duration = kValidationDuration;
    experiment.loads.emplace_back("cpu", validationCpuWaveform());
    experiment.loads.emplace_back("disk_platters",
                                  validationDiskWaveform());
    std::vector<TimeSeries> emulated =
        simulateExperiment(calibration.spec, experiment, {"cpu_air"});

    TimeSeries util("cpu_util_percent");
    for (double t = 0.0; t <= kValidationDuration; t += 10.0)
        util.add(t, 100.0 * validationCpuWaveform()(t));

    TimeSeries real_temp = sensed.temperatures.at("cpu_air");
    TimeSeries emulated_temp = emulated[0];
    emitSeries({&util, &real_temp, &emulated_temp}, 2);

    summary("cpu_air_max_error_vs_truth_degC",
            emulated_temp.maxAbsError(truth.temperatures.at("cpu_air")));
    summary("cpu_air_mean_error_vs_truth_degC",
            emulated_temp.meanAbsError(truth.temperatures.at("cpu_air")));
    summary("cpu_air_max_error_vs_sensors_degC",
            emulated_temp.maxAbsError(real_temp));
    paperClaim("cpu_air_max_error_degC",
               "<= 1.0 at all times (Figure 7, right Y axis)");
    return 0;
}
