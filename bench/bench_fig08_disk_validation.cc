/**
 * @file
 * Figure 8: "Real-system disk validation" — the disk face of the same
 * frozen-input mixed benchmark as Figure 7.
 */

#include <cstdio>

#include "bench_util.hh"
#include "calib/validation.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;
    using namespace mercury::calib;

    banner("Figure 8", "validation: disk on the mixed 5000 s benchmark, "
                       "calibrated inputs frozen");

    refmodel::ReferenceConfig reference_config;
    CalibrationResult calibration =
        calibrateTable1AgainstReference(reference_config, true);

    refmodel::ReferenceConfig truth_config = reference_config;
    truth_config.sensorNoiseStddev = 0.0;
    truth_config.sensorQuantization = 0.0;
    truth_config.sensorLagSeconds = 0.0;

    std::vector<std::pair<std::string, Waveform>> loads{
        {"cpu", validationCpuWaveform()},
        {"disk", validationDiskWaveform()}};
    ReferenceRun truth = runReference(truth_config, kValidationDuration,
                                      loads, {"disk_platters"}, false);
    ReferenceRun sensed = runReference(reference_config,
                                       kValidationDuration, loads,
                                       {"disk_platters"}, true);

    Experiment experiment;
    experiment.duration = kValidationDuration;
    experiment.loads.emplace_back("cpu", validationCpuWaveform());
    experiment.loads.emplace_back("disk_platters",
                                  validationDiskWaveform());
    std::vector<TimeSeries> emulated =
        simulateExperiment(calibration.spec, experiment,
                           {"disk_platters"});

    TimeSeries util("disk_util_percent");
    for (double t = 0.0; t <= kValidationDuration; t += 10.0)
        util.add(t, 100.0 * validationDiskWaveform()(t));

    TimeSeries real_temp = sensed.temperatures.at("disk_platters");
    TimeSeries emulated_temp = emulated[0];
    emitSeries({&util, &real_temp, &emulated_temp}, 2);

    summary("disk_max_error_vs_truth_degC",
            emulated_temp.maxAbsError(
                truth.temperatures.at("disk_platters")));
    summary("disk_mean_error_vs_truth_degC",
            emulated_temp.meanAbsError(
                truth.temperatures.at("disk_platters")));
    summary("disk_max_error_vs_sensors_degC",
            emulated_temp.maxAbsError(real_temp));
    paperClaim("disk_max_error_degC",
               "<= 1.0 at all times (Figure 8; in-disk sensor itself "
               "is only good to 3 degC)");
    return 0;
}
