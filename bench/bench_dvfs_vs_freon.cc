/**
 * @file
 * Section 4.3: "Freon vs CPU Thermal Management" — the comparison the
 * paper argues qualitatively, run quantitatively: CPU-local
 * voltage/frequency scaling versus Freon's remote throttling versus
 * their combination ("the best approach ... should probably be a
 * combination of software and hardware techniques"), plus the
 * two-stage content-aware policy Section 4.3 proposes.
 *
 * Expected shape: DVFS alone caps the temperature but slows the hot
 * servers (lower frequency during the peak, higher latency/queueing
 * pressure); Freon alone holds the temperature by shifting load at
 * full speed; the combination uses the hardware as a fast safety net
 * under the software policy.
 */

#include <cstdio>

#include "bench_util.hh"
#include "freon/experiment.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;

    banner("Section 4.3", "local DVFS vs Freon's remote throttling vs "
                          "the combination");

    struct Variant
    {
        const char *label;
        freon::PolicyKind policy;
        bool dvfs;
    };
    const Variant variants[] = {
        {"none", freon::PolicyKind::None, false},
        {"dvfs_only", freon::PolicyKind::None, true},
        {"freon", freon::PolicyKind::FreonBase, false},
        {"freon_two_stage", freon::PolicyKind::FreonTwoStage, false},
        {"freon_plus_dvfs", freon::PolicyKind::FreonBase, true},
    };

    std::printf("variant,m1_peak_C,drops,min_freq_m1,throttle_events,"
                "adjustments,energy_J\n");
    for (const Variant &variant : variants) {
        freon::ExperimentConfig config;
        config.policy = variant.policy;
        config.workload.duration = 2000.0;
        config.addPaperEmergencies();
        config.enableDvfs = variant.dvfs;
        freon::ExperimentResult result = freon::runExperiment(config);
        double min_freq = 1.0;
        if (variant.dvfs)
            min_freq = result.cpuFrequency.at("m1").minValue();
        std::printf("%s,%.2f,%llu,%.2f,%llu,%llu,%.0f\n", variant.label,
                    result.peakCpuTemperature.at("m1"),
                    static_cast<unsigned long long>(result.dropped),
                    min_freq,
                    static_cast<unsigned long long>(
                        result.throttleEvents),
                    static_cast<unsigned long long>(
                        result.weightAdjustments),
                    result.energyJoules);
    }
    paperClaim("argument", "remote throttling needs no HW/OS support, "
                           "throttles non-CPU components too, and does "
                           "not slow interrupt processing; combine SW "
                           "(coarse) with HW (fast) for the best of "
                           "both");
    return 0;
}
