/**
 * @file
 * Section 3.2: "Simulated machine experiments" — Mercury versus the
 * CFD solver (the paper used Fluent).
 *
 * Method, as published: mesh a 2-D server case with a CPU, a disk and
 * a power supply; let the fine-grained solver characterise the
 * material-to-air boundaries; enter those values into Mercury together
 * with "a rough approximation of the air flow that was also provided
 * by [the solver]"; then compare steady-state temperatures for 14
 * combinations of CPU and disk power at a fixed PSU power.
 *
 * The boundary characterisation uses three solves (a base case plus
 * one sensitivity solve per variable block), which pins each block's
 * temperature/power slope and its preheat from the PSU stream — the
 * 2-D case's analogue of Figure 1(b)'s cross-branch air edges. The
 * paper reports agreement within 0.25 degC (disk) / 0.32 degC (CPU);
 * absolute temperatures differ with the geometry, but the agreement
 * must hold across the sweep.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "cfd/cfd2d.hh"
#include "core/thermal_graph.hh"
#include "util/units.hh"

namespace {

using namespace mercury;

/** Per-block linear characterisation extracted from the CFD. */
struct BlockFit
{
    double slope = 0.0;     //!< dT_block/dP [K/W]
    double intercept = 0.0; //!< T_block at P = 0 [degC]
};

/**
 * Build the Mercury machine for the 2-D case. Each variable block has
 * its own air branch; the branch inflow mixes fresh inlet air with a
 * slice of the PSU exhaust stream sized to reproduce the block's
 * zero-power intercept, and the heat constant k is set so the total
 * temperature/power slope matches the CFD's.
 */
core::MachineSpec
mercuryCaseFromCfd(const cfd::CfdSolver &calibrated, const BlockFit &cpu,
                   const BlockFit &disk)
{
    const double t_in = 21.6;
    const double mdot_c =
        calibrated.massFlow() * units::kAirSpecificHeat;

    core::MachineSpec spec;
    spec.name = "case2d";
    spec.inletTemperature = t_in;
    spec.initialTemperature = t_in;
    spec.fanCfm =
        units::m3PerSToCfm(calibrated.massFlow() / units::kAirDensity);

    auto component = [](const char *name) {
        core::NodeSpec node;
        node.name = name;
        node.kind = core::NodeKind::Component;
        node.mass = 0.3; // steady state is mass-independent
        node.specificHeat = 896.0;
        node.hasPower = true;
        node.minPower = 1.0;
        node.maxPower = 1.0;
        return node;
    };
    spec.nodes.push_back(component("cpu"));
    spec.nodes.push_back(component("disk"));
    spec.nodes.push_back(component("ps"));

    auto air = [](const char *name, core::NodeKind kind) {
        core::NodeSpec node;
        node.name = name;
        node.kind = kind;
        return node;
    };
    spec.nodes.push_back(air("inlet", core::NodeKind::Inlet));
    spec.nodes.push_back(air("cpu_air", core::NodeKind::Air));
    spec.nodes.push_back(air("disk_air", core::NodeKind::Air));
    spec.nodes.push_back(air("ps_air", core::NodeKind::Air));
    spec.nodes.push_back(air("ps_air_down", core::NodeKind::Air));
    spec.nodes.push_back(air("bypass_air", core::NodeKind::Air));
    spec.nodes.push_back(air("exhaust", core::NodeKind::Exhaust));

    // PSU branch straight from the solver's boundary properties.
    const double kPsPower = 40.0;
    double f_ps = calibrated.heatCarryingFraction("ps");
    double k_ps = calibrated.effectiveK("ps");
    double dt_ps = kPsPower / (f_ps * mdot_c); // PSU stream heat-up

    // Variable blocks: fix the branch flow, then match slope and
    // intercept.
    const double f_cpu = 0.20;
    const double f_disk = 0.20;
    auto branch = [&](const BlockFit &fit, double f_branch, double *k_out,
                      double *g_out) {
        double air_term = 1.0 / (f_branch * mdot_c);
        double k = 1.0 / std::max(fit.slope - air_term, 1e-3);
        // Preheat: fraction g of the branch flow taken from the PSU
        // stream reproduces the zero-power intercept.
        double g = f_branch * (fit.intercept - t_in) / dt_ps;
        g = std::clamp(g, 0.0, 0.9 * f_ps);
        *k_out = k;
        *g_out = g;
    };
    double k_cpu = 0.0, g_cpu = 0.0;
    double k_disk = 0.0, g_disk = 0.0;
    branch(cpu, f_cpu, &k_cpu, &g_cpu);
    branch(disk, f_disk, &k_disk, &g_disk);

    spec.heatEdges.push_back({"cpu", "cpu_air", k_cpu});
    spec.heatEdges.push_back({"disk", "disk_air", k_disk});
    spec.heatEdges.push_back({"ps", "ps_air", k_ps});

    // Air topology: inlet feeds the PSU branch, the fresh parts of the
    // cpu/disk branches and a bypass; the PSU exhaust stream donates
    // the preheat slices.
    double inlet_cpu = f_cpu - g_cpu;
    double inlet_disk = f_disk - g_disk;
    double bypass = 1.0 - f_ps - inlet_cpu - inlet_disk;
    spec.airEdges.push_back({"inlet", "ps_air", f_ps});
    spec.airEdges.push_back({"inlet", "cpu_air", inlet_cpu});
    spec.airEdges.push_back({"inlet", "disk_air", inlet_disk});
    spec.airEdges.push_back({"inlet", "bypass_air", bypass});
    spec.airEdges.push_back({"ps_air", "ps_air_down", 1.0});
    spec.airEdges.push_back({"ps_air_down", "cpu_air", g_cpu / f_ps});
    spec.airEdges.push_back({"ps_air_down", "disk_air", g_disk / f_ps});
    spec.airEdges.push_back(
        {"ps_air_down", "exhaust", 1.0 - (g_cpu + g_disk) / f_ps});
    spec.airEdges.push_back({"cpu_air", "exhaust", 1.0});
    spec.airEdges.push_back({"disk_air", "exhaust", 1.0});
    spec.airEdges.push_back({"bypass_air", "exhaust", 1.0});
    return spec;
}

/** Mercury steady state for one power combination. */
void
mercurySteadyState(const core::MachineSpec &spec, double cpu_w,
                   double disk_w, double ps_w, double *cpu_t,
                   double *disk_t)
{
    core::ThermalGraph graph(spec);
    graph.setPowerRange("cpu", cpu_w, cpu_w);
    graph.setPowerRange("disk", disk_w, disk_w);
    graph.setPowerRange("ps", ps_w, ps_w);
    for (int i = 0; i < 30000; ++i)
        graph.step(1.0);
    *cpu_t = graph.temperature("cpu");
    *disk_t = graph.temperature("disk");
}

} // namespace

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;

    banner("Section 3.2", "Mercury vs 2-D CFD steady states, 14 power "
                          "combinations (PSU fixed at 40 W)");

    const double kPsPower = 40.0;

    // 1. Characterisation solves: base + one step per variable block.
    cfd::CfdSolver base(cfd::serverCase(7.0, 9.0, kPsPower));
    cfd::CfdSolver cpu_step(cfd::serverCase(31.0, 9.0, kPsPower));
    cfd::CfdSolver disk_step(cfd::serverCase(7.0, 14.0, kPsPower));
    cfd::SolveStats stats = base.solve();
    cpu_step.solve();
    disk_step.solve();
    std::printf("# base solve: %d iterations, residual %.2e\n",
                stats.iterations, stats.residual);

    BlockFit cpu_fit;
    cpu_fit.slope = (cpu_step.blockMeanTemperature("cpu") -
                     base.blockMeanTemperature("cpu")) /
                    24.0;
    cpu_fit.intercept =
        base.blockMeanTemperature("cpu") - cpu_fit.slope * 7.0;
    BlockFit disk_fit;
    disk_fit.slope = (disk_step.blockMeanTemperature("disk") -
                      base.blockMeanTemperature("disk")) /
                     5.0;
    disk_fit.intercept =
        base.blockMeanTemperature("disk") - disk_fit.slope * 9.0;
    std::printf("# fits: cpu slope=%.3f K/W intercept=%.2f C; disk "
                "slope=%.3f K/W intercept=%.2f C\n",
                cpu_fit.slope, cpu_fit.intercept, disk_fit.slope,
                disk_fit.intercept);

    core::MachineSpec spec = mercuryCaseFromCfd(base, cpu_fit, disk_fit);

    // 2. The 14 experiments (Table 1's component power ranges).
    std::printf("cpu_w,disk_w,cfd_cpu_C,mercury_cpu_C,cpu_err_C,"
                "cfd_disk_C,mercury_disk_C,disk_err_C\n");
    double worst_cpu = 0.0;
    double worst_disk = 0.0;
    for (double disk_w : {9.0, 14.0}) {
        for (double cpu_w : {7.0, 11.0, 15.0, 19.0, 23.0, 27.0, 31.0}) {
            cfd::CfdSolver reference(
                cfd::serverCase(cpu_w, disk_w, kPsPower));
            reference.solve();
            double cfd_cpu = reference.blockMeanTemperature("cpu");
            double cfd_disk = reference.blockMeanTemperature("disk");

            double mercury_cpu = 0.0;
            double mercury_disk = 0.0;
            mercurySteadyState(spec, cpu_w, disk_w, kPsPower,
                               &mercury_cpu, &mercury_disk);

            double cpu_err = std::abs(mercury_cpu - cfd_cpu);
            double disk_err = std::abs(mercury_disk - cfd_disk);
            worst_cpu = std::max(worst_cpu, cpu_err);
            worst_disk = std::max(worst_disk, disk_err);
            std::printf("%.0f,%.0f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
                        cpu_w, disk_w, cfd_cpu, mercury_cpu, cpu_err,
                        cfd_disk, mercury_disk, disk_err);
        }
    }

    summary("max_cpu_error_degC", worst_cpu);
    summary("max_disk_error_degC", worst_disk);
    paperClaim("max_cpu_error_degC", "0.32 (vs Fluent)");
    paperClaim("max_disk_error_degC", "0.25 (vs Fluent)");
    return 0;
}
