/**
 * @file
 * Request-plane throughput bench: closed-loop sensor-read RPCs against
 * a solver daemon at 1/2/4 serve workers, with the multi-message
 * syscalls (recvmmsg/sendmmsg) on and off. Each client keeps a window
 * of pipelined requests in flight so both the batched receive path and
 * the batched reply path actually see batches.
 *
 * Emits machine-readable JSON on stdout (progress goes to stderr):
 *
 *   build/bench/bench_rpc > BENCH_rpc.json
 *
 * scripts/run_bench_rpc.sh wraps this and enforces the 4-worker
 * speedup gate on hosts with enough cores.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/solver.hh"
#include "core/spec.hh"
#include "metrics/metrics.hh"
#include "net/udp.hh"
#include "proto/messages.hh"
#include "proto/solver_daemon.hh"
#include "util/flags.hh"

using namespace mercury;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * One closed-loop client: keep @p window SensorRequests in flight,
 * count completed replies until the deadline. Replies lost by the
 * kernel under overload simply age out of the window (0.25 s), so the
 * loop never wedges on a dropped datagram.
 */
uint64_t
clientLoop(uint16_t port, const std::string &machine, size_t window,
           double seconds)
{
    net::UdpSocket socket;
    net::Endpoint solver{*net::resolveHost("127.0.0.1"), port};

    std::vector<proto::Packet> packets(window);
    std::vector<net::UdpSocket::SendDatagram> items(window);
    std::vector<uint8_t> buffers(window * proto::kMessageSize);
    std::vector<net::UdpSocket::RecvDatagram> metas(window);

    uint64_t completed = 0;
    uint32_t request_id = 1;
    auto start = Clock::now();
    while (secondsSince(start) < seconds) {
        for (size_t i = 0; i < window; ++i) {
            proto::SensorRequest request;
            request.requestId = request_id++;
            request.machine = machine;
            request.component = "cpu";
            packets[i] = proto::encode(request);
            items[i].to = solver;
            items[i].data = packets[i].data();
            items[i].length = packets[i].size();
        }
        if (socket.sendMany(items.data(), window) == 0)
            break; // route gone; don't spin
        size_t got = 0;
        auto wait_start = Clock::now();
        while (got < window) {
            double remaining = 0.25 - secondsSince(wait_start);
            if (remaining <= 0.0)
                break;
            size_t n = socket.recvMany(buffers.data(),
                                       proto::kMessageSize, metas.data(),
                                       window - got, remaining);
            if (n == 0)
                break;
            got += n;
        }
        completed += got;
    }
    return completed;
}

struct RunResult
{
    unsigned serveThreads = 0;
    bool batched = false;
    uint64_t replies = 0;
    double seconds = 0.0;
    double requestsPerSecond = 0.0;
};

RunResult
runOnce(unsigned serve_threads, bool batched, unsigned clients,
        size_t window, double seconds, int run_index)
{
    net::setBatchSyscallsEnabled(batched);

    core::Solver solver;
    std::vector<std::string> machines;
    for (unsigned i = 0; i < clients; ++i) {
        machines.push_back("m" + std::to_string(i));
        solver.addMachine(core::table1Server(machines.back()));
    }

    metrics::Registry registry;
    proto::SolverDaemon::Config config;
    config.port = 0;
    config.serveThreads = serve_threads;
    config.iterationSeconds = 0.0;
    config.statsLogSeconds = 0.0;
    config.shmName = "/mercury.bench_rpc." + std::to_string(::getpid()) +
                     "." + std::to_string(run_index);
    config.registry = &registry;
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    // Let the first telemetry heartbeat publish so reads are served
    // from the shared-memory snapshot (the steady-state fast path).
    std::this_thread::sleep_for(std::chrono::milliseconds(250));

    std::vector<uint64_t> completed(clients, 0);
    std::vector<std::thread> threads;
    auto start = Clock::now();
    for (unsigned i = 0; i < clients; ++i) {
        threads.emplace_back([&, i] {
            completed[i] =
                clientLoop(daemon.port(), machines[i], window, seconds);
        });
    }
    for (auto &thread : threads)
        thread.join();
    double elapsed = secondsSince(start);

    daemon.stop();
    server.join();
    net::setBatchSyscallsEnabled(true);

    RunResult result;
    result.serveThreads = serve_threads;
    result.batched = batched;
    result.seconds = elapsed;
    for (uint64_t n : completed)
        result.replies += n;
    result.requestsPerSecond = double(result.replies) / elapsed;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("bench_rpc",
                  "request-plane throughput at 1/2/4 serve workers");
    flags.defineDouble("seconds", 0.5, "measured seconds per run");
    flags.defineInt("clients", 8, "concurrent closed-loop clients");
    flags.defineInt("window", 16, "pipelined requests per client");
    if (!flags.parse(argc, argv))
        return 0;

    double seconds = flags.getDouble("seconds");
    unsigned clients = static_cast<unsigned>(flags.getInt("clients"));
    size_t window = static_cast<size_t>(flags.getInt("window"));
    if (seconds <= 0.0 || clients < 1 || window < 1 ||
        window > net::UdpSocket::kMaxBatch) {
        std::fprintf(stderr, "bench_rpc: bad flag values\n");
        return 1;
    }

    const unsigned worker_counts[] = {1, 2, 4};
    std::vector<RunResult> results;
    int run_index = 0;
    for (bool batched : {true, false}) {
        for (unsigned workers : worker_counts) {
            std::fprintf(stderr,
                         "bench_rpc: %u worker(s), %s syscalls...\n",
                         workers, batched ? "batched" : "single");
            results.push_back(runOnce(workers, batched, clients, window,
                                      seconds, run_index++));
            std::fprintf(stderr, "bench_rpc:   %.0f requests/s\n",
                         results.back().requestsPerSecond);
        }
    }

    std::printf("{\n");
    std::printf("  \"context\": {\"cores\": %ld, \"clients\": %u, "
                "\"window\": %zu, \"seconds\": %g},\n",
                ::sysconf(_SC_NPROCESSORS_ONLN), clients, window,
                seconds);
    std::printf("  \"benchmarks\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        std::printf("    {\"name\": \"rpc_w%u_%s\", "
                    "\"serve_threads\": %u, \"batch_syscalls\": %s, "
                    "\"replies\": %llu, \"seconds\": %.6f, "
                    "\"requests_per_second\": %.1f}%s\n",
                    r.serveThreads, r.batched ? "batch" : "single",
                    r.serveThreads, r.batched ? "true" : "false",
                    static_cast<unsigned long long>(r.replies),
                    r.seconds, r.requestsPerSecond,
                    i + 1 < results.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
