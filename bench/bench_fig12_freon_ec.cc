/**
 * @file
 * Figure 12: "Freon-EC: CPU temperatures (top) and utilizations
 * (bottom)" — the energy-conserving policy on the same trace and
 * emergencies. Expected shape: the active configuration shrinks to a
 * single server during the valleys (machines cool ~10 degC while
 * off), grows back to all four for the afternoon peak without
 * dropping requests, and the base thermal policy handles the
 * emergencies at the peak.
 */

#include <cstdio>

#include "bench_util.hh"
#include "freon/experiment.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;

    banner("Figure 12", "Freon-EC: regions {m1,m3} and {m2,m4}, "
                        "U_h=70%, U_l=60%, same trace/emergencies");

    freon::ExperimentConfig config;
    config.policy = freon::PolicyKind::FreonEC;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();
    freon::ExperimentResult result = freon::runExperiment(config);

    std::printf("# CPU temperatures (degC)\n");
    emitSeries({&result.cpuTemperature.at("m1"),
                &result.cpuTemperature.at("m2"),
                &result.cpuTemperature.at("m3"),
                &result.cpuTemperature.at("m4")},
               2);
    std::printf("# CPU utilizations and active server count\n");
    emitSeries({&result.cpuUtilization.at("m1"),
                &result.cpuUtilization.at("m2"),
                &result.cpuUtilization.at("m3"),
                &result.cpuUtilization.at("m4"),
                &result.activeServers},
               2);

    // Energy comparison against always-on Freon.
    freon::ExperimentConfig base_config = config;
    base_config.policy = freon::PolicyKind::FreonBase;
    freon::ExperimentResult base = freon::runExperiment(base_config);

    summary("dropped_requests", static_cast<double>(result.dropped));
    summary("min_active_servers", result.activeServers.minValue());
    summary("max_active_servers", result.activeServers.maxValue());
    summary("servers_turned_off",
            static_cast<double>(result.serversTurnedOff));
    summary("servers_turned_on",
            static_cast<double>(result.serversTurnedOn));
    summary("energy_joules", result.energyJoules);
    summary("energy_vs_always_on",
            result.energyJoules / base.energyJoules);
    summary("m1_peak_cpu_degC", result.peakCpuTemperature.at("m1"));
    paperClaim("min_active_servers",
               "1 (reached at 60 s during the valley)");
    paperClaim("behaviour", "off machines cool ~10 degC; configuration "
                            "grows to 4 for the peak with no drops; "
                            "base policy handles the peak emergencies");
    return 0;
}
