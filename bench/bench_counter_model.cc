/**
 * @file
 * Section 2.3's "Mercury for modern processors": when a CPU's power is
 * not linear in its high-level utilization, monitord can instead
 * translate hardware performance-counter events into an energy
 * estimate and report a "low-level utilization" in [Pbase, Pmax].
 *
 * The reference machine's CPU is mildly super-linear, so the
 * high-level path misestimates power at mid utilizations. This bench
 * runs the mixed validation workload three ways — high-level
 * utilization, ideal event-driven accounting, and noisy synthetic
 * counters through the full CounterSource pipeline — and compares the
 * emulated CPU-air series against the reference truth.
 */

#include <cstdio>

#include "bench_util.hh"
#include "calib/validation.hh"
#include "core/power.hh"
#include "core/thermal_graph.hh"
#include "monitor/source.hh"

namespace {

using namespace mercury;

/** Run the calibrated machine feeding it per-second utilizations. */
TimeSeries
emulate(const core::MachineSpec &spec,
        const std::function<double(double)> &cpu_util,
        const std::function<double(double)> &disk_util, double duration)
{
    core::ThermalGraph graph(spec);
    TimeSeries out("cpu_air");
    for (double t = 1.0; t <= duration + 1e-9; t += 1.0) {
        graph.setUtilization("cpu", cpu_util(t - 1.0));
        graph.setUtilization("disk_platters", disk_util(t - 1.0));
        graph.step(1.0);
        out.add(t, graph.temperature("cpu_air"));
    }
    return out;
}

} // namespace

int
main()
{
    using namespace mercury::bench;
    using namespace mercury::calib;

    banner("Section 2.3", "high-level utilization vs perf-counter "
                          "energy accounting (mixed 5000 s workload)");

    refmodel::ReferenceConfig reference_config;
    CalibrationResult calibration =
        calibrateTable1AgainstReference(reference_config, true);

    refmodel::ReferenceConfig truth_config = reference_config;
    truth_config.sensorNoiseStddev = 0.0;
    truth_config.sensorQuantization = 0.0;
    truth_config.sensorLagSeconds = 0.0;
    ReferenceRun truth = runReference(
        truth_config, kValidationDuration,
        {{"cpu", validationCpuWaveform()},
         {"disk", validationDiskWaveform()}},
        {"cpu_air"}, false);

    // The reference CPU's true power curve, for the ideal
    // event-driven path: P(u) = 7 + 24 (0.88 u + 0.12 u^2).
    auto true_power = [](double u) {
        return 7.0 + 24.0 * (0.88 * u + 0.12 * u * u);
    };
    auto low_level_util = [&](double u) {
        return (true_power(u) - 7.0) / 24.0;
    };

    // Path 1: plain high-level utilization (the default monitord).
    TimeSeries high_level = emulate(
        calibration.spec, validationCpuWaveform(),
        validationDiskWaveform(), kValidationDuration);

    // Path 2: ideal event-driven accounting (exact power -> util).
    TimeSeries ideal = emulate(
        calibration.spec,
        [&](double t) { return low_level_util(validationCpuWaveform()(t)); },
        validationDiskWaveform(), kValidationDuration);

    // Path 3: the full synthetic-counter pipeline with count noise.
    // Event rates chosen so the model's power matches the true curve
    // in expectation.
    auto model = core::pentium4CounterModel(7.0, 31.0);
    std::vector<double> peaks{2e9, 4e7, 6e7, 5e7};
    // Per-event energies yield model power p(u) ~ 7 + u * sum(rates x
    // energy); rescale rates so full load lands on 31 W.
    double full_watts = 0.0;
    for (size_t i = 0; i < peaks.size(); ++i) {
        full_watts +=
            peaks[i] * model.eventClass(i).nanojoulesPerEvent * 1e-9;
    }
    for (double &rate : peaks)
        rate *= 24.0 / full_watts;
    monitor::CounterSource counters(
        model,
        [&](double t) { return low_level_util(validationCpuWaveform()(t)); },
        peaks, 99);
    TimeSeries counter_emulated = emulate(
        calibration.spec,
        [&](double t) { return counters.sample(t)[0].utilization; },
        validationDiskWaveform(), kValidationDuration);

    const TimeSeries &reference = truth.temperatures.at("cpu_air");
    std::printf("path,max_err_C,mean_err_C\n");
    std::printf("high_level_utilization,%.4f,%.4f\n",
                high_level.maxAbsError(reference),
                high_level.meanAbsError(reference));
    std::printf("event_driven_ideal,%.4f,%.4f\n",
                ideal.maxAbsError(reference),
                ideal.meanAbsError(reference));
    std::printf("synthetic_counters,%.4f,%.4f\n",
                counter_emulated.maxAbsError(reference),
                counter_emulated.meanAbsError(reference));

    summary("high_level_mean_err_C", high_level.meanAbsError(reference));
    summary("event_driven_mean_err_C", ideal.meanAbsError(reference));
    paperClaim("motivation", "high-level utilization 'may not be "
                             "adequate for modern processors'; the "
                             "counter path reports utilization in "
                             "[Pbase, Pmax] instead");
    return 0;
}
