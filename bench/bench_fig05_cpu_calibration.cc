/**
 * @file
 * Figure 5: "Calibrating Mercury for CPU usage and temperature."
 *
 * The CPU microbenchmark puts the machine through utilization steps
 * interspersed with idle periods for 14 000 s. The "real" machine is
 * the high-fidelity reference model read through its noisy/quantized
 * sensors; Mercury's inputs are then calibrated until the emulated
 * CPU-air series matches. The CSV reproduces the figure's three
 * curves (utilization, real temperature, emulated temperature).
 */

#include <cstdio>

#include "bench_util.hh"
#include "calib/validation.hh"
#include "core/spec.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;
    using namespace mercury::calib;

    banner("Figure 5",
           "CPU calibration microbenchmark, 14000 s, emulated vs real");

    refmodel::ReferenceConfig reference_config; // noisy sensors, as real
    ReferenceRun real = runReference(
        reference_config, kCalibrationDuration,
        {{"cpu", cpuCalibrationWaveform()}}, {"cpu_air"}, true);

    // Calibrate the Table 1 inputs against the measurement.
    CalibrationResult calibration =
        calibrateTable1AgainstReference(reference_config, true);

    // Re-run the calibrated machine over the same schedule.
    Experiment experiment;
    experiment.duration = kCalibrationDuration;
    experiment.loads.emplace_back("cpu", cpuCalibrationWaveform());
    std::vector<TimeSeries> emulated =
        simulateExperiment(calibration.spec, experiment, {"cpu_air"});
    std::vector<TimeSeries> uncalibrated = simulateExperiment(
        core::table1Server(), experiment, {"cpu_air"});

    TimeSeries util("cpu_util_percent");
    for (double t = 0.0; t <= kCalibrationDuration; t += 20.0)
        util.add(t, 100.0 * cpuCalibrationWaveform()(t));

    TimeSeries real_temp = real.temperatures.at("cpu_air");
    TimeSeries emulated_temp = emulated[0];
    emitSeries({&util, &real_temp, &emulated_temp}, 2);

    summary("calibration_mean_error_before_degC",
            calibration.initialError);
    summary("calibration_mean_error_after_degC", calibration.finalError);
    summary("cpu_air_max_error_degC",
            emulated_temp.maxAbsError(real_temp));
    summary("cpu_air_max_error_uncalibrated_degC",
            uncalibrated[0].maxAbsError(real_temp));
    summary("objective_evaluations", calibration.evaluations);
    paperClaim("behaviour", "emulated curve tracks the measured CPU-air "
                            "staircase after <1 h of calibration");
    return 0;
}
