/**
 * @file
 * Fleet-scale iteration cost and the quiescence-aware active-set
 * engine. The claim under test: once a mostly-steady fleet has
 * converged, iteration cost should scale with the *active* machines
 * (plus the O(fleet) room phase), not the fleet size — a 1024-machine
 * room at steady load iterates >= 10x faster with quiescence on than
 * the classic all-machines path (scripts/run_bench_scale.sh gates on
 * exactly that ratio).
 *
 * Both sides run serial (threads = 1) so the ratio isolates the
 * algorithmic win from thread-pool speedup, which
 * BM_SolverIterationClusterThreads in bench_micro_mercury measures
 * separately.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/solver.hh"

namespace {

using namespace mercury;

/**
 * range(0) machines at steady mixed load, range(1) != 0 enabling the
 * quiescence engine. Setup warms the fleet through its thermal
 * transient (same emulated span for both configurations) so the
 * measured loop sees the steady state the engine is built for.
 */
void
BM_SolverIterationSteadyFleet(benchmark::State &state)
{
    int machines = static_cast<int>(state.range(0));
    bool quiesce = state.range(1) != 0;

    core::SolverConfig config;
    config.threads = 1;
    if (quiesce) {
        config.quiescenceEpsilon = 0.25;
        config.quiescenceRefreshIterations = 256;
    }
    core::Solver solver(config);
    std::vector<std::string> names;
    for (int i = 0; i < machines; ++i)
        names.push_back("m" + std::to_string(i + 1));
    for (const std::string &name : names)
        solver.addMachine(core::table1Server(name));
    solver.setRoom(core::table1Room(names, 18.0));
    for (size_t i = 0; i < names.size(); ++i) {
        double util = 0.25 * static_cast<double>(i % 4);
        solver.setUtilization(names[i], "cpu", util);
    }

    // Warm-up: ride out the cold-start transient (thermal time
    // constant is ~180 emulated seconds) far enough that the active
    // set has collapsed when quiescence is on.
    solver.run(2000.0);

    for (auto _ : state)
        solver.iterate();

    state.SetItemsProcessed(state.iterations() * machines);
    state.counters["active"] =
        static_cast<double>(solver.activeMachineCount());
    state.counters["frozen"] =
        static_cast<double>(solver.frozenMachineCount());
}
BENCHMARK(BM_SolverIterationSteadyFleet)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Unit(benchmark::kMicrosecond);

/**
 * The wake path under churn: every iteration mutates a small slice of
 * the fleet (monitord-style utilization updates), so machines keep
 * cycling between frozen and active. Guards against the engine's
 * bookkeeping eating the win when the fleet is not perfectly still.
 */
void
BM_SolverIterationChurningFleet(benchmark::State &state)
{
    int machines = static_cast<int>(state.range(0));

    core::SolverConfig config;
    config.threads = 1;
    config.quiescenceEpsilon = 0.25;
    config.quiescenceRefreshIterations = 256;
    core::Solver solver(config);
    std::vector<std::string> names;
    for (int i = 0; i < machines; ++i)
        names.push_back("m" + std::to_string(i + 1));
    for (const std::string &name : names)
        solver.addMachine(core::table1Server(name));
    solver.setRoom(core::table1Room(names, 18.0));
    std::vector<core::Solver::NodeRef> cpus;
    for (const std::string &name : names)
        cpus.push_back(solver.resolveRef(name, "cpu"));
    solver.run(2000.0);

    // ~1% of the fleet changes load each iteration.
    int stride = machines >= 100 ? machines / 100 : 1;
    size_t cursor = 0;
    int flip = 0;
    for (auto _ : state) {
        for (int k = 0; k < stride; ++k) {
            cursor = (cursor + 101) % cpus.size();
            solver.setUtilization(cpus[cursor], flip ? 0.9 : 0.1);
        }
        flip = !flip;
        solver.iterate();
    }
    state.SetItemsProcessed(state.iterations() * machines);
    state.counters["active"] =
        static_cast<double>(solver.activeMachineCount());
    state.counters["frozen"] =
        static_cast<double>(solver.frozenMachineCount());
}
BENCHMARK(BM_SolverIterationChurningFleet)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
