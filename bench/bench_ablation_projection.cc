/**
 * @file
 * Ablation: Freon-EC's utilization-projection horizon. The paper
 * projects "two observation intervals into the future, assuming that
 * load will increase linearly" because "turning on a server takes
 * quite some time". No projection risks drops during ramp-ups;
 * over-projection burns energy on servers that were not needed.
 */

#include <cstdio>

#include "bench_util.hh"
#include "freon/experiment.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;

    banner("Ablation", "Freon-EC projection horizon (intervals of one "
                       "minute; boot takes 90 s)");

    std::printf("horizon_intervals,drops,drop_rate,energy_J,"
                "energy_vs_2,turn_ons,min_active\n");
    double energy_at_2 = 0.0;
    struct Row
    {
        int horizon;
        freon::ExperimentResult result;
    };
    std::vector<Row> rows;
    for (int horizon : {0, 1, 2, 4, 8}) {
        freon::ExperimentConfig config;
        config.policy = freon::PolicyKind::FreonEC;
        config.workload.duration = 2000.0;
        config.addPaperEmergencies();
        config.freon.projectionIntervals = horizon;
        rows.push_back({horizon, freon::runExperiment(config)});
        if (horizon == 2)
            energy_at_2 = rows.back().result.energyJoules;
    }
    for (const Row &row : rows) {
        const freon::ExperimentResult &r = row.result;
        std::printf("%d,%llu,%.4f,%.0f,%.3f,%llu,%.0f\n", row.horizon,
                    static_cast<unsigned long long>(r.dropped),
                    r.dropRate, r.energyJoules,
                    r.energyJoules / energy_at_2,
                    static_cast<unsigned long long>(r.serversTurnedOn),
                    r.activeServers.minValue());
    }
    paperClaim("horizon", "2 intervals: grows the configuration "
                          "without dropping requests in the process");
    return 0;
}
