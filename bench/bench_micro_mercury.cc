/**
 * @file
 * Microbenchmarks of the Mercury suite primitives (Section 2.3's
 * performance notes): the solver takes ~100 us per iteration on the
 * paper's hardware for the Figure 1 graphs, and a UDP readsensor()
 * round trip costs ~300 us — "substantially lower than the average
 * access time of the real thermal sensor in our SCSI disks, 500 us".
 */

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/solver.hh"
#include "core/trace.hh"
#include "proto/solver_daemon.hh"
#include "proto/solver_service.hh"
#include "refmodel/reference_server.hh"
#include "sensor/client.hh"
#include "sensor/sensor_api.hh"
#include "sensor/transport.hh"
#include "telemetry/reader.hh"
#include "telemetry/writer.hh"

namespace {

using namespace mercury;

void
BM_SolverIterationOneMachine(benchmark::State &state)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    solver.setUtilization("m1", "cpu", 0.7);
    for (auto _ : state)
        solver.iterate();
    state.SetLabel("paper: ~100 us per iteration (trace mode)");
}
BENCHMARK(BM_SolverIterationOneMachine);

void
BM_SolverIterationCluster(benchmark::State &state)
{
    // Iteration cost vs installation size (trace replication lets
    // Mercury emulate clusters far larger than the testbed).
    int machines = static_cast<int>(state.range(0));
    core::Solver solver;
    std::vector<std::string> names;
    for (int i = 0; i < machines; ++i)
        names.push_back("m" + std::to_string(i + 1));
    for (const std::string &name : names)
        solver.addMachine(core::table1Server(name));
    solver.setRoom(core::table1Room(names, 18.0));
    for (const std::string &name : names)
        solver.setUtilization(name, "cpu", 0.7);
    for (auto _ : state)
        solver.iterate();
    state.SetItemsProcessed(state.iterations() * machines);
}
BENCHMARK(BM_SolverIterationCluster)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_SolverIterationClusterThreads(benchmark::State &state)
{
    // The parallel stepping engine: range(0) machines stepped by
    // range(1) executors (0 = one per hardware thread, 1 = serial).
    // Real time is the honest speedup metric for a fan-out; process
    // CPU time rides along to show the parallelization overhead.
    int machines = static_cast<int>(state.range(0));
    core::SolverConfig config;
    config.threads = static_cast<unsigned>(state.range(1));
    core::Solver solver(config);
    std::vector<std::string> names;
    for (int i = 0; i < machines; ++i)
        names.push_back("m" + std::to_string(i + 1));
    for (const std::string &name : names)
        solver.addMachine(core::table1Server(name));
    solver.setRoom(core::table1Room(names, 18.0));
    for (const std::string &name : names)
        solver.setUtilization(name, "cpu", 0.7);
    for (auto _ : state)
        solver.iterate();
    state.SetItemsProcessed(state.iterations() * machines);

    // Label what actually ran, not just the flag value: the solver
    // fans machine stepping out over min(executors - 1, machines - 1)
    // pool workers plus the calling thread.
    unsigned executors = config.threads;
    if (executors == 0) {
        executors = std::thread::hardware_concurrency();
        if (executors == 0)
            executors = 1;
    }
    size_t workers = 0;
    if (executors > 1 && machines > 1)
        workers = std::min<size_t>(executors - 1,
                                   static_cast<size_t>(machines) - 1);
    state.SetLabel("executors=" + std::to_string(executors) +
                   " (caller + " + std::to_string(workers) +
                   " pool workers)");
}
BENCHMARK(BM_SolverIterationClusterThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 0})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void
BM_MessageEncodeDecode(benchmark::State &state)
{
    proto::UtilizationUpdate update;
    update.machine = "machine1";
    update.component = "disk";
    update.utilization = 0.375;
    for (auto _ : state) {
        proto::Packet packet = proto::encode(update);
        auto decoded = proto::decode(packet);
        benchmark::DoNotOptimize(decoded);
    }
}
BENCHMARK(BM_MessageEncodeDecode);

void
BM_ReadSensorInProcess(benchmark::State &state)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    proto::SolverService service(solver);
    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service), "m1");
    for (auto _ : state) {
        auto value = client.read("cpu");
        benchmark::DoNotOptimize(value);
    }
}
BENCHMARK(BM_ReadSensorInProcess);

void
BM_ReadSensorShm(benchmark::State &state)
{
    // The zero-copy fast path: readsensor() through the shared-memory
    // telemetry segment (registry lookup + two seqlock-guarded loads).
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    std::string shm_name =
        "/mercury.bench." + std::to_string(::getpid());
    telemetry::Writer writer(shm_name, solver, 1.0);

    // A daemon would keep the heartbeat fresh; emulate that here so
    // the staleness guard stays honest while the loop runs.
    std::atomic<bool> done{false};
    std::thread heartbeat([&] {
        while (!done.load(std::memory_order_relaxed)) {
            writer.publish();
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });

    ::setenv("MERCURY_SHM_NAME", shm_name.c_str(), 1);
    proto::SolverService service(solver);
    installLocalSolver(&service);
    int sd = opensensor_for("local", 8367, "m1", "cpu");

    readsensor(sd); // prime: attach + resolve the slot
    if (sensorpath(sd) != MERCURY_SENSOR_PATH_SHM) {
        state.SkipWithError("shm fast path did not engage");
    } else {
        for (auto _ : state) {
            float value = readsensor(sd);
            benchmark::DoNotOptimize(value);
        }
    }

    closesensor(sd);
    installLocalSolver(nullptr);
    ::unsetenv("MERCURY_SHM_NAME");
    done.store(true, std::memory_order_relaxed);
    heartbeat.join();
    state.SetLabel("target: < 300 ns, >= 20x the UDP loopback");
}
BENCHMARK(BM_ReadSensorShm);

void
BM_TelemetryPublish(benchmark::State &state)
{
    // Writer cost per solver iteration: a seqlocked copy of every
    // node's temperature and utilization for range(0) machines.
    int machines = static_cast<int>(state.range(0));
    core::Solver solver;
    std::vector<std::string> names;
    for (int i = 0; i < machines; ++i)
        names.push_back("m" + std::to_string(i + 1));
    for (const std::string &name : names)
        solver.addMachine(core::table1Server(name));
    std::string shm_name =
        "/mercury.bench." + std::to_string(::getpid());
    telemetry::Writer writer(shm_name, solver, 1.0);
    for (auto _ : state)
        writer.publish();
    state.SetItemsProcessed(state.iterations() * writer.slotCount());
    state.SetLabel("items = published slots");
}
BENCHMARK(BM_TelemetryPublish)->Arg(4)->Arg(64)->Arg(256);

void
BM_ReadSensorUdpLoopback(benchmark::State &state)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    proto::SolverDaemon::Config config;
    config.port = 0;
    config.iterationSeconds = 0.0;
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    {
        sensor::SensorClient client(
            std::make_unique<sensor::UdpTransport>("127.0.0.1",
                                                   daemon.port()),
            "m1");
        for (auto _ : state) {
            auto value = client.read("cpu");
            benchmark::DoNotOptimize(value);
        }
    }
    daemon.stop();
    server.join();
    state.SetLabel("paper: ~300 us (real SCSI in-disk sensor: 500 us)");
}
BENCHMARK(BM_ReadSensorUdpLoopback);

void
BM_ReadSensorBatchedUdp(benchmark::State &state)
{
    // One MultiReadRequest datagram answering both of tempd's sensors
    // (compare per-component cost against BM_ReadSensorUdpLoopback).
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    proto::SolverDaemon::Config config;
    config.port = 0;
    config.iterationSeconds = 0.0;
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    {
        sensor::SensorClient client(
            std::make_unique<sensor::UdpTransport>("127.0.0.1",
                                                   daemon.port()),
            "m1");
        const std::vector<std::string> components{"cpu", "disk"};
        for (auto _ : state) {
            auto values = client.readMany(components);
            benchmark::DoNotOptimize(values);
        }
        state.SetItemsProcessed(state.iterations() * components.size());
    }
    daemon.stop();
    server.join();
    state.SetLabel("items = component reads, one datagram per batch");
}
BENCHMARK(BM_ReadSensorBatchedUdp);

void
BM_ReferenceServerStep(benchmark::State &state)
{
    refmodel::ReferenceConfig config;
    refmodel::ReferenceServer server(config);
    server.setUtilization("cpu", 0.7);
    for (auto _ : state)
        server.step(1.0);
    state.SetLabel("one emulated second of the RK4 reference model");
}
BENCHMARK(BM_ReferenceServerStep);

void
BM_OfflineTraceThroughput(benchmark::State &state)
{
    // Emulated seconds per wall second in offline (trace) mode.
    core::UtilizationTrace trace;
    trace.add(0.0, "m1", "cpu", 0.8);
    for (auto _ : state) {
        state.PauseTiming();
        core::Solver solver;
        solver.addMachine(core::table1Server("m1"));
        core::TraceRunner runner(solver, trace);
        runner.record("m1", "cpu");
        state.ResumeTiming();
        runner.run(1000.0);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
    state.SetLabel("items = emulated seconds");
}
BENCHMARK(BM_OfflineTraceThroughput);

} // namespace

BENCHMARK_MAIN();
