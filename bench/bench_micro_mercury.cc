/**
 * @file
 * Microbenchmarks of the Mercury suite primitives (Section 2.3's
 * performance notes): the solver takes ~100 us per iteration on the
 * paper's hardware for the Figure 1 graphs, and a UDP readsensor()
 * round trip costs ~300 us — "substantially lower than the average
 * access time of the real thermal sensor in our SCSI disks, 500 us".
 */

#include <benchmark/benchmark.h>

#include <thread>

#include "core/solver.hh"
#include "core/trace.hh"
#include "proto/solver_daemon.hh"
#include "proto/solver_service.hh"
#include "refmodel/reference_server.hh"
#include "sensor/client.hh"
#include "sensor/transport.hh"

namespace {

using namespace mercury;

void
BM_SolverIterationOneMachine(benchmark::State &state)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    solver.setUtilization("m1", "cpu", 0.7);
    for (auto _ : state)
        solver.iterate();
    state.SetLabel("paper: ~100 us per iteration (trace mode)");
}
BENCHMARK(BM_SolverIterationOneMachine);

void
BM_SolverIterationCluster(benchmark::State &state)
{
    // Iteration cost vs installation size (trace replication lets
    // Mercury emulate clusters far larger than the testbed).
    int machines = static_cast<int>(state.range(0));
    core::Solver solver;
    std::vector<std::string> names;
    for (int i = 0; i < machines; ++i)
        names.push_back("m" + std::to_string(i + 1));
    for (const std::string &name : names)
        solver.addMachine(core::table1Server(name));
    solver.setRoom(core::table1Room(names, 18.0));
    for (const std::string &name : names)
        solver.setUtilization(name, "cpu", 0.7);
    for (auto _ : state)
        solver.iterate();
    state.SetItemsProcessed(state.iterations() * machines);
}
BENCHMARK(BM_SolverIterationCluster)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_SolverIterationClusterThreads(benchmark::State &state)
{
    // The parallel stepping engine: range(0) machines stepped by
    // range(1) executors (0 = one per hardware thread, 1 = serial).
    int machines = static_cast<int>(state.range(0));
    core::SolverConfig config;
    config.threads = static_cast<unsigned>(state.range(1));
    core::Solver solver(config);
    std::vector<std::string> names;
    for (int i = 0; i < machines; ++i)
        names.push_back("m" + std::to_string(i + 1));
    for (const std::string &name : names)
        solver.addMachine(core::table1Server(name));
    solver.setRoom(core::table1Room(names, 18.0));
    for (const std::string &name : names)
        solver.setUtilization(name, "cpu", 0.7);
    for (auto _ : state)
        solver.iterate();
    state.SetItemsProcessed(state.iterations() * machines);
}
BENCHMARK(BM_SolverIterationClusterThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 0});

void
BM_MessageEncodeDecode(benchmark::State &state)
{
    proto::UtilizationUpdate update;
    update.machine = "machine1";
    update.component = "disk";
    update.utilization = 0.375;
    for (auto _ : state) {
        proto::Packet packet = proto::encode(update);
        auto decoded = proto::decode(packet);
        benchmark::DoNotOptimize(decoded);
    }
}
BENCHMARK(BM_MessageEncodeDecode);

void
BM_ReadSensorInProcess(benchmark::State &state)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    proto::SolverService service(solver);
    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service), "m1");
    for (auto _ : state) {
        auto value = client.read("cpu");
        benchmark::DoNotOptimize(value);
    }
}
BENCHMARK(BM_ReadSensorInProcess);

void
BM_ReadSensorUdpLoopback(benchmark::State &state)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    proto::SolverDaemon::Config config;
    config.port = 0;
    config.iterationSeconds = 0.0;
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    {
        sensor::SensorClient client(
            std::make_unique<sensor::UdpTransport>("127.0.0.1",
                                                   daemon.port()),
            "m1");
        for (auto _ : state) {
            auto value = client.read("cpu");
            benchmark::DoNotOptimize(value);
        }
    }
    daemon.stop();
    server.join();
    state.SetLabel("paper: ~300 us (real SCSI in-disk sensor: 500 us)");
}
BENCHMARK(BM_ReadSensorUdpLoopback);

void
BM_ReferenceServerStep(benchmark::State &state)
{
    refmodel::ReferenceConfig config;
    refmodel::ReferenceServer server(config);
    server.setUtilization("cpu", 0.7);
    for (auto _ : state)
        server.step(1.0);
    state.SetLabel("one emulated second of the RK4 reference model");
}
BENCHMARK(BM_ReferenceServerStep);

void
BM_OfflineTraceThroughput(benchmark::State &state)
{
    // Emulated seconds per wall second in offline (trace) mode.
    core::UtilizationTrace trace;
    trace.add(0.0, "m1", "cpu", 0.8);
    for (auto _ : state) {
        state.PauseTiming();
        core::Solver solver;
        solver.addMachine(core::table1Server("m1"));
        core::TraceRunner runner(solver, trace);
        runner.record("m1", "cpu");
        state.ResumeTiming();
        runner.run(1000.0);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
    state.SetLabel("items = emulated seconds");
}
BENCHMARK(BM_OfflineTraceThroughput);

} // namespace

BENCHMARK_MAIN();
