/**
 * @file
 * Section 7 extension: Freon on a multi-tier service. A 4-server web
 * tier calls a 3-server application tier for every dynamic request;
 * an inlet emergency hits one application server (a1) at 480 s. Each
 * tier runs its own admd over the shared Mercury room: the app tier
 * shifts load off its hot machine while the web tier keeps serving
 * untouched, and nothing drops.
 */

#include <cstdio>

#include "bench_util.hh"
#include "freon/two_tier.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;

    banner("Multi-tier", "web tier -> app tier; emergency on app "
                         "server a1 at 480 s");

    std::printf("policy,web_drops,app_drops,a1_peak_C,"
                "app_adjustments,web_adjustments,energy_J\n");
    for (auto [policy, label] :
         {std::pair{freon::PolicyKind::None, "none"},
          std::pair{freon::PolicyKind::FreonBase, "freon"}}) {
        freon::TwoTierConfig config;
        config.policy = policy;
        config.workload.duration = 2000.0;
        // The front of a dynamic request is cheap (5 ms); the app
        // tier does the heavy lifting.
        config.workload.cgiCpuSeconds = 0.005;
        config.emergencies.push_back({480.0, "a1", 38.6});
        freon::TwoTierResult result =
            freon::runTwoTierExperiment(config);
        std::printf("%s,%llu,%llu,%.2f,%llu,%llu,%.0f\n", label,
                    static_cast<unsigned long long>(result.web.dropped),
                    static_cast<unsigned long long>(result.app.dropped),
                    result.app.peakCpuTemperature.at("a1"),
                    static_cast<unsigned long long>(
                        result.app.weightAdjustments),
                    static_cast<unsigned long long>(
                        result.web.weightAdjustments),
                    result.energyJoules);
    }
    paperClaim("extension", "Section 7: 'Freon needs to be extended to "
                            "deal with multi-tier services' — each "
                            "tier manages its own emergencies");
    return 0;
}
