/**
 * @file
 * Figure 11: "Freon: CPU temperatures (top) and utilizations
 * (bottom)." Four Apache servers behind LVS, the diurnal 30%-CGI
 * trace peaking at 70% utilization, cooling emergencies injected on
 * machines 1 and 3 at t = 480 s, Freon's base policy managing the
 * cluster. Expected shape: the affected CPUs cross T_h near the load
 * peak, Freon shifts load to the cool machines, temperatures hold
 * just under T_h's neighbourhood without red-lining, and the entire
 * workload is served without drops.
 */

#include <cstdio>

#include "bench_util.hh"
#include "freon/experiment.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;

    banner("Figure 11", "Freon base policy: 4 servers, emergencies on "
                        "m1/m3 at 480 s, 2000 s run");

    freon::ExperimentConfig config;
    config.policy = freon::PolicyKind::FreonBase;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();
    freon::ExperimentResult result = freon::runExperiment(config);

    std::printf("# CPU temperatures (degC); T_h = %.0f, T_r = %.0f\n",
                config.freon.components.at("cpu").high,
                config.freon.components.at("cpu").redline);
    emitSeries({&result.cpuTemperature.at("m1"),
                &result.cpuTemperature.at("m2"),
                &result.cpuTemperature.at("m3"),
                &result.cpuTemperature.at("m4")},
               2);
    std::printf("# CPU utilizations\n");
    emitSeries({&result.cpuUtilization.at("m1"),
                &result.cpuUtilization.at("m2"),
                &result.cpuUtilization.at("m3"),
                &result.cpuUtilization.at("m4")},
               2);

    summary("dropped_requests", static_cast<double>(result.dropped));
    summary("drop_rate", result.dropRate);
    summary("weight_adjustments",
            static_cast<double>(result.weightAdjustments));
    summary("servers_turned_off",
            static_cast<double>(result.serversTurnedOff));
    summary("m1_first_over_Th_s", result.firstTimeOverHigh.at("m1"));
    summary("m1_peak_cpu_degC", result.peakCpuTemperature.at("m1"));
    summary("m3_peak_cpu_degC", result.peakCpuTemperature.at("m3"));
    summary("m2_peak_cpu_degC", result.peakCpuTemperature.at("m2"));
    paperClaim("dropped_requests", "0 (entire workload served)");
    paperClaim("m1_first_over_Th_s", "~1200 (m3 at ~1380)");
    paperClaim("behaviour", "one or two weight adjustments keep the "
                            "hot CPUs just under T_h; no server off");
    return 0;
}
