/**
 * @file
 * Hot-standby replication end to end, with real processes and real
 * UDP. A primary mercury_solverd streams its mutation WAL to a
 * standby; the test kill -9s the primary under live monitord load,
 * watches the standby promote itself within the lease, and proves the
 * promoted daemon's trajectory is bitwise identical to replaying the
 * standby's WAL into a fresh in-process solver. A second test runs the
 * pair under mercury_supervisord and watches the port-file flip.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hh"
#include "monitor/monitord.hh"
#include "net/udp.hh"
#include "proto/solver_service.hh"
#include "proto/wal_codec.hh"
#include "replica/wal.hh"
#include "sensor/client.hh"
#include "state/checkpoint.hh"

#ifndef MERCURY_CONFIG_DIR
#define MERCURY_CONFIG_DIR "configs"
#endif
#ifndef MERCURY_SOLVERD_BIN
#define MERCURY_SOLVERD_BIN "mercury_solverd"
#endif
#ifndef MERCURY_SUPERVISORD_BIN
#define MERCURY_SUPERVISORD_BIN "mercury_supervisord"
#endif

namespace mercury {
namespace {

std::string
tempPath(const std::string &tag)
{
    return "/tmp/mercury_replica_e2e." + tag + "." +
           std::to_string(::getpid());
}

pid_t
spawn(const std::vector<std::string> &command)
{
    pid_t pid = ::fork();
    if (pid == 0) {
        std::vector<char *> argv;
        for (const std::string &arg : command)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    return pid;
}

/** Kills and reaps the process on scope exit unless already reaped. */
struct ProcessGuard
{
    pid_t pid = -1;
    ~ProcessGuard()
    {
        if (pid > 0) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
        }
    }
    void disarm() { pid = -1; }
};

/** Wait for @p pid to exit; returns its status, or nullopt on timeout. */
std::optional<int>
waitForExit(pid_t pid, double timeout_seconds)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeout_seconds);
    while (std::chrono::steady_clock::now() < deadline) {
        int status = 0;
        pid_t got = ::waitpid(pid, &status, WNOHANG);
        if (got == pid)
            return status;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return std::nullopt;
}

/**
 * Live child of @p parent whose /proc cmdline has @p arg_value right
 * after @p arg_name. Disambiguates the two solverds an HA supervisor
 * runs (findChildOf alone would be a coin flip).
 */
pid_t
findChildWithArg(pid_t parent, const std::string &arg_name,
                 const std::string &arg_value)
{
    DIR *proc = ::opendir("/proc");
    if (!proc)
        return -1;
    pid_t found = -1;
    while (dirent *entry = ::readdir(proc)) {
        std::string name = entry->d_name;
        if (name.empty() ||
            name.find_first_not_of("0123456789") != std::string::npos) {
            continue;
        }
        std::ifstream stat("/proc/" + name + "/stat");
        std::string line;
        if (!std::getline(stat, line))
            continue;
        size_t close = line.rfind(')');
        if (close == std::string::npos)
            continue;
        std::istringstream rest(line.substr(close + 1));
        std::string state;
        long ppid = 0;
        rest >> state >> ppid;
        if (ppid != parent)
            continue;

        std::ifstream cmdline_file("/proc/" + name + "/cmdline");
        std::string cmdline((std::istreambuf_iterator<char>(cmdline_file)),
                            std::istreambuf_iterator<char>());
        std::vector<std::string> argv;
        size_t start = 0;
        while (start < cmdline.size()) {
            size_t end = cmdline.find('\0', start);
            if (end == std::string::npos)
                end = cmdline.size();
            argv.push_back(cmdline.substr(start, end - start));
            start = end + 1;
        }
        for (size_t i = 0; i + 1 < argv.size(); ++i) {
            if (argv[i] == arg_name && argv[i + 1] == arg_value) {
                found = static_cast<pid_t>(std::stol(name));
                break;
            }
        }
        if (found > 0)
            break;
    }
    ::closedir(proc);
    return found;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    while (!content.empty() &&
           (content.back() == '\n' || content.back() == '\r')) {
        content.pop_back();
    }
    return content;
}

/** Poll `fiddle replica` on @p probe until the line contains @p want. */
bool
waitForReplicaLine(sensor::SensorClient &probe, const std::string &want,
                   double timeout_seconds, std::string *last = nullptr)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeout_seconds);
    while (std::chrono::steady_clock::now() < deadline) {
        auto [ok, line] = probe.fiddle("replica");
        if (last)
            *last = line;
        if (ok && line.find(want) != std::string::npos)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

std::string
configPath()
{
    return std::string(MERCURY_CONFIG_DIR) + "/table1_server.dot";
}

TEST(ReplicaE2E, Kill9PromotesStandbyWithinLeaseAndBitwiseMatchesWal)
{
    const uint16_t primary_port =
        static_cast<uint16_t>(52000 + (::getpid() % 5000));
    const uint16_t standby_port = primary_port + 1;
    const uint16_t replication_port = primary_port + 2;
    const std::string wal_path = tempPath("failover.wal");
    const std::string checkpoint_path = tempPath("failover.ck");
    const double lease_seconds = 1.0;
    std::remove(wal_path.c_str());
    std::remove((wal_path + ".old").c_str());
    std::remove(checkpoint_path.c_str());

    ProcessGuard primary;
    primary.pid = spawn({
        MERCURY_SOLVERD_BIN,
        "--config", configPath(),
        "--port", std::to_string(primary_port),
        "--iteration-seconds", "0.02",
        "--replication-port", std::to_string(replication_port),
        "--replica-heartbeat-seconds", "0.1",
        "--lease-seconds", std::to_string(lease_seconds),
        "--hash-iterations", "25",
        "--no-shm",
    });
    ASSERT_GT(primary.pid, 0);

    sensor::SensorClient primary_probe(
        std::make_unique<sensor::UdpTransport>("127.0.0.1", primary_port,
                                               0.1, 1),
        "server");
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i)
        up = primary_probe.fiddle("stats").first;
    ASSERT_TRUE(up) << "primary never came up on port " << primary_port;

    // The standby keeps its own WAL (the primary-numbered stream) and
    // checkpoint. The checkpoint timer stays out of the test window so
    // the standby's WAL rotates exactly once: at promotion.
    ProcessGuard standby;
    standby.pid = spawn({
        MERCURY_SOLVERD_BIN,
        "--config", configPath(),
        "--port", std::to_string(standby_port),
        "--iteration-seconds", "0.02",
        "--replica-of", "127.0.0.1:" + std::to_string(replication_port),
        "--replication-port", "0",
        "--replica-heartbeat-seconds", "0.1",
        "--lease-seconds", std::to_string(lease_seconds),
        "--hash-iterations", "25",
        "--wal-path", wal_path,
        "--checkpoint-path", checkpoint_path,
        "--checkpoint-seconds", "600",
        "--no-shm",
    });
    ASSERT_GT(standby.pid, 0);

    sensor::SensorClient standby_probe(
        std::make_unique<sensor::UdpTransport>("127.0.0.1", standby_port,
                                               0.1, 1),
        "server");
    std::string replica_line;
    ASSERT_TRUE(waitForReplicaLine(standby_probe, "role=standby", 10.0,
                                   &replica_line))
        << replica_line;

    // Live monitord load against the primary over real UDP.
    auto source = std::make_unique<monitor::SyntheticSource>();
    source->addComponent("cpu", [](double t) {
        return 0.25 + 0.5 * (long(t) % 3 == 0);
    });
    auto socket = std::make_shared<net::UdpSocket>();
    net::Endpoint primary_endpoint{*net::resolveHost("127.0.0.1"),
                                   primary_port};
    monitor::Monitord monitord(
        "server", std::move(source),
        monitor::Monitord::udpSink(socket, primary_endpoint));

    double tick_clock = 0.0;
    auto tick = [&](int rounds) {
        for (int i = 0; i < rounds; ++i) {
            monitord.setOnline(true);
            monitord.tick(tick_clock);
            tick_clock += 1.0;
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
        }
    };

    // Run under load until mutations replicate and a state-hash check
    // confirms the shadow is bitwise-live.
    bool streaming = false;
    for (int i = 0; i < 400 && !streaming; ++i) {
        tick(1);
        auto [ok, line] = standby_probe.fiddle("replica");
        replica_line = line;
        streaming = ok && line.find("hash=ok") != std::string::npos &&
                    line.find("applied=0 ") == std::string::npos;
    }
    ASSERT_TRUE(streaming)
        << "standby never verified a state hash: " << replica_line;

    // Chaos: kill -9 the primary mid-load.
    ASSERT_EQ(::kill(primary.pid, SIGKILL), 0);
    auto kill_time = std::chrono::steady_clock::now();
    ::waitpid(primary.pid, nullptr, 0);
    primary.disarm();
    tick(5); // load keeps arriving at the dead primary's port

    // The standby must promote itself once the lease runs dry. Allow
    // generous slack over the lease for a loaded CI box, but measure.
    ASSERT_TRUE(waitForReplicaLine(standby_probe, "role=primary",
                                   lease_seconds + 8.0, &replica_line))
        << "standby never promoted: " << replica_line;
    double promotion_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      kill_time)
            .count();
    EXPECT_LE(promotion_seconds, lease_seconds + 8.0);

    // The promoted daemon serves writes again (read-only gate lifted).
    {
        auto [ok, line] = standby_probe.fiddle("server fan 100");
        EXPECT_TRUE(ok) << line;
    }

    // Let the promoted daemon run on a little, then shut down cleanly;
    // it writes its final checkpoint on the way out.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ASSERT_EQ(::kill(standby.pid, SIGTERM), 0);
    auto status = waitForExit(standby.pid, 15.0);
    ASSERT_TRUE(status.has_value()) << "standby did not exit";
    standby.disarm();
    ASSERT_TRUE(WIFEXITED(*status));
    EXPECT_EQ(WEXITSTATUS(*status), 0);

    // The promoted daemon's final state, as durably checkpointed.
    state::Checkpoint final_state;
    std::string error;
    ASSERT_TRUE(
        state::loadCheckpointFile(checkpoint_path, &final_state, &error))
        << error;
    ASSERT_EQ(final_state.machines.size(), 1u);

    // Promotion rotated the standby's WAL, so generation 1 — every
    // record replicated from the dead primary, closed by the Promotion
    // marker — survives at <wal>.old, and the current file holds the
    // post-promotion generation. Replaying both into a fresh solver
    // must land bitwise on the promoted daemon's checkpoint: same
    // inputs at the same iteration boundaries, same deterministic
    // solver, same bits.
    core::SolverConfig replay_config;
    replay_config.iterationSeconds = 0.02;
    core::Solver replayed(replay_config);
    replayed.addMachine(core::table1Server("server"));
    proto::SolverService replay_service(replayed);
    auto apply = [&](const replica::WalRecord &record) {
        auto message = proto::decodeWalMutation(record.payload.data(),
                                                record.payload.size());
        ASSERT_TRUE(message.has_value());
        replay_service.handleReplicated(*message);
    };

    replica::WalReadResult generation1;
    ASSERT_TRUE(
        replica::readWalFile(wal_path + ".old", &generation1, &error))
        << error;
    ASSERT_TRUE(generation1.tailOk) << generation1.tailError;
    ASSERT_FALSE(generation1.records.empty());
    EXPECT_EQ(generation1.records.back().kind,
              replica::WalRecordKind::Promotion);
    replica::ReplayStats stats;
    ASSERT_TRUE(replica::replayWal(replayed, generation1, apply, 0,
                                   &stats, &error))
        << error;
    EXPECT_GT(stats.applied, 0u);

    replica::WalReadResult generation2;
    ASSERT_TRUE(replica::readWalFile(wal_path, &generation2, &error))
        << error;
    ASSERT_TRUE(generation2.tailOk) << generation2.tailError;
    EXPECT_EQ(generation2.header.startIteration, replayed.iterations());
    ASSERT_TRUE(replica::replayWal(replayed, generation2, apply,
                                   final_state.iterations, &stats,
                                   &error))
        << error;

    EXPECT_EQ(replayed.iterations(), final_state.iterations);
    state::Checkpoint want = state::captureSolver(replayed);
    ASSERT_EQ(want.machines.size(), 1u);
    ASSERT_EQ(final_state.machines[0].temperatures.size(),
              want.machines[0].temperatures.size());
    for (size_t i = 0; i < want.machines[0].temperatures.size(); ++i) {
        EXPECT_EQ(final_state.machines[0].temperatures[i],
                  want.machines[0].temperatures[i]) // bitwise
            << "node " << i;
    }
    EXPECT_EQ(final_state.machines[0].energyConsumed,
              want.machines[0].energyConsumed);

    std::remove(wal_path.c_str());
    std::remove((wal_path + ".old").c_str());
    std::remove(checkpoint_path.c_str());
}

TEST(ReplicaE2E, SupervisordHaPairFlipsThePortFileOnFailover)
{
    const uint16_t primary_port =
        static_cast<uint16_t>(57100 + (::getpid() % 5000));
    const uint16_t standby_port = primary_port + 1;
    const uint16_t replication_port = primary_port + 2;
    const std::string port_file = tempPath("portfile");
    std::remove(port_file.c_str());

    ProcessGuard supervisor;
    supervisor.pid = spawn({
        MERCURY_SUPERVISORD_BIN,
        "--solver-port", std::to_string(primary_port),
        "--standby-solver-port", std::to_string(standby_port),
        "--port-file", port_file,
        "--probe-seconds", "0.2",
        "--stall-seconds", "30",
        "--initial-backoff", "0.5",
        "--max-backoff", "1.0",
        "--",
        MERCURY_SOLVERD_BIN,
        "--config", configPath(),
        "--port", std::to_string(primary_port),
        "--iteration-seconds", "0.02",
        "--replication-port", std::to_string(replication_port),
        "--replica-heartbeat-seconds", "0.1",
        "--lease-seconds", "1.0",
        "--no-shm",
        "---",
        MERCURY_SOLVERD_BIN,
        "--config", configPath(),
        "--port", std::to_string(standby_port),
        "--iteration-seconds", "0.02",
        "--replica-of", "127.0.0.1:" + std::to_string(replication_port),
        "--replication-port", "0",
        "--replica-heartbeat-seconds", "0.1",
        "--lease-seconds", "1.0",
        "--no-shm",
    });
    ASSERT_GT(supervisor.pid, 0);

    // The supervisor advertises the primary first.
    bool advertised = false;
    for (int i = 0; i < 200 && !advertised; ++i) {
        advertised = readFile(port_file) == std::to_string(primary_port);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_TRUE(advertised)
        << "port-file never advertised the primary: '"
        << readFile(port_file) << "'";

    sensor::SensorClient standby_probe(
        std::make_unique<sensor::UdpTransport>("127.0.0.1", standby_port,
                                               0.1, 1),
        "server");
    std::string replica_line;
    ASSERT_TRUE(waitForReplicaLine(standby_probe, "role=standby", 10.0,
                                   &replica_line))
        << replica_line;

    // kill -9 the primary solverd (identified by its --port argument,
    // since the supervisor has two solverd children).
    pid_t primary_pid = findChildWithArg(supervisor.pid, "--port",
                                         std::to_string(primary_port));
    ASSERT_GT(primary_pid, 0) << "cannot find the primary child";
    ASSERT_EQ(::kill(primary_pid, SIGKILL), 0);

    // The supervisor must flip the port-file to the standby...
    bool flipped = false;
    for (int i = 0; i < 300 && !flipped; ++i) {
        flipped = readFile(port_file) == std::to_string(standby_port);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_TRUE(flipped) << "port-file never flipped: '"
                         << readFile(port_file) << "'";

    // ...and the standby must have promoted to primary.
    ASSERT_TRUE(waitForReplicaLine(standby_probe, "role=primary", 10.0,
                                   &replica_line))
        << "standby never promoted: " << replica_line;

    ASSERT_EQ(::kill(supervisor.pid, SIGTERM), 0);
    auto status = waitForExit(supervisor.pid, 15.0);
    ASSERT_TRUE(status.has_value()) << "supervisor did not exit";
    supervisor.disarm();
    ASSERT_TRUE(WIFEXITED(*status));
    EXPECT_EQ(WEXITSTATUS(*status), 0);

    std::remove(port_file.c_str());
}

} // namespace
} // namespace mercury
