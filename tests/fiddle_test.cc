/**
 * @file
 * Tests for the fiddle command language and script runner (the
 * thermal-emergency tool of Section 2.3, Figure 4).
 */

#include <gtest/gtest.h>

#include "core/solver.hh"
#include "fiddle/command.hh"
#include "fiddle/script.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace fiddle {
namespace {

core::Solver &
singleMachine(std::unique_ptr<core::Solver> &holder)
{
    holder = std::make_unique<core::Solver>();
    holder->addMachine(core::table1Server("machine1"));
    return *holder;
}

TEST(ParseCommand, PaperExampleLine)
{
    std::string error;
    auto cmd = parseCommand("fiddle machine1 temperature inlet 30", &error);
    ASSERT_TRUE(cmd.has_value()) << error;
    EXPECT_EQ(cmd->machine, "machine1");
    EXPECT_EQ(cmd->property, "temperature");
    EXPECT_EQ(cmd->target, "inlet");
    ASSERT_EQ(cmd->values.size(), 1u);
    EXPECT_DOUBLE_EQ(cmd->values[0], 30.0);
}

TEST(ParseCommand, LeadingFiddleTokenOptional)
{
    auto cmd = parseCommand("machine1 fan 45.5");
    ASSERT_TRUE(cmd.has_value());
    EXPECT_EQ(cmd->property, "fan");
    EXPECT_DOUBLE_EQ(cmd->values[0], 45.5);
}

TEST(ParseCommand, EdgeTargets)
{
    auto cmd = parseCommand("machine1 k cpu:cpu_air 0.9");
    ASSERT_TRUE(cmd.has_value());
    EXPECT_EQ(cmd->target, "cpu:cpu_air");

    std::string error;
    EXPECT_FALSE(parseCommand("machine1 k cpu 0.9", &error).has_value());
    EXPECT_NE(error.find("a:b"), std::string::npos);
}

TEST(ParseCommand, PowerTakesTwoValues)
{
    auto cmd = parseCommand("machine1 power cpu 7 31");
    ASSERT_TRUE(cmd.has_value());
    ASSERT_EQ(cmd->values.size(), 2u);
    EXPECT_DOUBLE_EQ(cmd->values[1], 31.0);

    EXPECT_FALSE(parseCommand("machine1 power cpu 7").has_value());
}

TEST(ParseCommand, AutoRestoresInlet)
{
    auto cmd = parseCommand("machine1 temperature inlet auto");
    ASSERT_TRUE(cmd.has_value());
    EXPECT_TRUE(cmd->autoValue);
    EXPECT_TRUE(cmd->values.empty());
}

TEST(ParseCommand, Rejections)
{
    std::string error;
    EXPECT_FALSE(parseCommand("", &error).has_value());
    EXPECT_FALSE(parseCommand("machine1", &error).has_value());
    EXPECT_FALSE(parseCommand("machine1 explode now", &error).has_value());
    EXPECT_NE(error.find("unknown property"), std::string::npos);
    EXPECT_FALSE(
        parseCommand("machine1 temperature inlet abc", &error).has_value());
    EXPECT_FALSE(parseCommand("m ac x 20", &error).has_value());
}

TEST(ApplyCommand, InletEmergencyAndRestore)
{
    std::unique_ptr<core::Solver> holder;
    core::Solver &solver = singleMachine(holder);

    FiddleResult result =
        applyLine(solver, "fiddle machine1 temperature inlet 38.6");
    EXPECT_TRUE(result.ok) << result.message;
    EXPECT_DOUBLE_EQ(solver.machine("machine1").inletTemperature(), 38.6);

    result = applyLine(solver, "machine1 temperature inlet 21.6");
    EXPECT_TRUE(result.ok);
    EXPECT_DOUBLE_EQ(solver.machine("machine1").inletTemperature(), 21.6);
}

TEST(ApplyCommand, UnknownMachineReported)
{
    std::unique_ptr<core::Solver> holder;
    core::Solver &solver = singleMachine(holder);
    FiddleResult result = applyLine(solver, "ghost fan 40");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message.find("unknown machine"), std::string::npos);
}

TEST(ApplyCommand, PinAndUnpin)
{
    std::unique_ptr<core::Solver> holder;
    core::Solver &solver = singleMachine(holder);
    EXPECT_TRUE(applyLine(solver, "machine1 pin cpu 85").ok);
    EXPECT_TRUE(solver.machine("machine1").isPinned("cpu"));
    EXPECT_DOUBLE_EQ(solver.temperature("machine1", "cpu"), 85.0);
    EXPECT_TRUE(applyLine(solver, "machine1 unpin cpu").ok);
    EXPECT_FALSE(solver.machine("machine1").isPinned("cpu"));
}

TEST(ApplyCommand, UtilizationThroughAlias)
{
    std::unique_ptr<core::Solver> holder;
    core::Solver &solver = singleMachine(holder);
    EXPECT_TRUE(applyLine(solver, "machine1 utilization disk 0.9").ok);
    EXPECT_DOUBLE_EQ(
        solver.machine("machine1").utilization("disk_platters"), 0.9);
}

TEST(ApplyCommand, KAndFractionValidation)
{
    std::unique_ptr<core::Solver> holder;
    core::Solver &solver = singleMachine(holder);
    EXPECT_TRUE(applyLine(solver, "machine1 k cpu:cpu_air 1.5").ok);
    EXPECT_DOUBLE_EQ(solver.machine("machine1").heatK("cpu", "cpu_air"),
                     1.5);
    EXPECT_FALSE(applyLine(solver, "machine1 k cpu:disk_air 1.5").ok);
    EXPECT_FALSE(applyLine(solver, "machine1 fraction cpu:cpu_air 0.5").ok);
    EXPECT_TRUE(
        applyLine(solver, "machine1 fraction ps_air_down:cpu_air 0.2").ok);
}

TEST(ApplyCommand, PowerRange)
{
    std::unique_ptr<core::Solver> holder;
    core::Solver &solver = singleMachine(holder);
    EXPECT_TRUE(applyLine(solver, "machine1 power cpu 10 60").ok);
    solver.setUtilization("machine1", "cpu", 1.0);
    EXPECT_DOUBLE_EQ(solver.machine("machine1").power("cpu"), 60.0);
    EXPECT_FALSE(applyLine(solver, "machine1 power cpu 60 10").ok);
    EXPECT_FALSE(applyLine(solver, "machine1 power motherboard 4 4").ok ==
                 false)
        << "motherboard is powered and should accept a range";
}

TEST(ApplyCommand, RoomCommands)
{
    auto solver = std::make_unique<core::Solver>();
    solver->addMachine(core::table1Server("m1"));
    solver->addMachine(core::table1Server("m2"));
    solver->setRoom(core::table1Room({"m1", "m2"}, 18.0));

    EXPECT_TRUE(applyLine(*solver, "room ac ac 27").ok);
    solver->run(10.0);
    EXPECT_NEAR(solver->machine("m1").inletTemperature(), 27.0, 1e-9);

    EXPECT_TRUE(applyLine(*solver, "room fraction m1:cluster_exhaust 0.9")
                    .ok);
    EXPECT_FALSE(applyLine(*solver, "room ac nosuch 27").ok ==
                 true);
}

TEST(ApplyCommand, RoomCommandsWithoutRoomFail)
{
    std::unique_ptr<core::Solver> holder;
    core::Solver &solver = singleMachine(holder);
    FiddleResult result = applyLine(solver, "room ac ac 25");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message.find("no room model"), std::string::npos);
}

TEST(Script, ParsesPaperFigure4)
{
    const char *text =
        "#!/bin/bash\n"
        "sleep 100\n"
        "fiddle machine1 temperature inlet 30\n"
        "sleep 200\n"
        "fiddle machine1 temperature inlet 21.6\n";
    std::vector<std::string> errors;
    FiddleScript script = FiddleScript::parse(text, &errors);
    EXPECT_TRUE(errors.empty());
    ASSERT_EQ(script.commands().size(), 2u);
    EXPECT_DOUBLE_EQ(script.commands()[0].time, 100.0);
    EXPECT_DOUBLE_EQ(script.commands()[0].command.values[0], 30.0);
    EXPECT_DOUBLE_EQ(script.commands()[1].time, 300.0);
    EXPECT_DOUBLE_EQ(script.duration(), 300.0);
}

TEST(Script, ReportsBadLinesButKeepsGoodOnes)
{
    std::vector<std::string> errors;
    FiddleScript script = FiddleScript::parse(
        "sleep ten\nfiddle m1 fan 40\nlaunch missiles\n", &errors);
    EXPECT_EQ(script.commands().size(), 1u);
    ASSERT_EQ(errors.size(), 2u);
    EXPECT_NE(errors[0].find("line 1"), std::string::npos);
    EXPECT_NE(errors[1].find("unrecognized"), std::string::npos);
}

TEST(Script, ScheduleOnSimulatorFiresAtScriptTimes)
{
    std::unique_ptr<core::Solver> holder;
    core::Solver &solver = singleMachine(holder);
    sim::Simulator simulator;

    FiddleScript script = FiddleScript::parse(
        "sleep 100\nfiddle machine1 temperature inlet 30\n"
        "sleep 200\nfiddle machine1 temperature inlet 21.6\n");
    script.scheduleOn(simulator, solver);

    simulator.runUntil(sim::seconds(99));
    EXPECT_DOUBLE_EQ(solver.machine("machine1").inletTemperature(), 21.6);
    simulator.runUntil(sim::seconds(100));
    EXPECT_DOUBLE_EQ(solver.machine("machine1").inletTemperature(), 30.0);
    simulator.runUntil(sim::seconds(301));
    EXPECT_DOUBLE_EQ(solver.machine("machine1").inletTemperature(), 21.6);
}

} // namespace
} // namespace fiddle
} // namespace mercury
