/**
 * @file
 * Tests of the sharded, syscall-batched UDP request plane: the
 * recvMany/sendMany socket primitives (batched and fallback paths),
 * monitord's update batcher, and a multi-client hammer that drives a
 * sharded daemon with concurrent mutating + read RPCs and checks that
 * loss accounting stays exact and the solver trajectory is bitwise
 * identical to the single-threaded daemon's.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hh"
#include "core/spec.hh"
#include "metrics/metrics.hh"
#include "monitor/monitord.hh"
#include "net/udp.hh"
#include "proto/messages.hh"
#include "proto/solver_daemon.hh"

namespace mercury {
namespace {

/** Restore the process-global batching switch on scope exit. */
struct BatchSwitchGuard
{
    explicit BatchSwitchGuard(bool enabled)
    {
        net::setBatchSyscallsEnabled(enabled);
    }
    ~BatchSwitchGuard() { net::setBatchSyscallsEnabled(true); }
};

void
exerciseRoundTrip(size_t count)
{
    net::UdpSocket receiver;
    receiver.bind(0);
    net::UdpSocket sender;
    net::Endpoint to{*net::resolveHost("127.0.0.1"),
                     receiver.localPort()};

    std::vector<std::string> payloads;
    std::vector<net::UdpSocket::SendDatagram> items;
    for (size_t i = 0; i < count; ++i)
        payloads.push_back("datagram-" + std::to_string(i));
    for (size_t i = 0; i < count; ++i) {
        net::UdpSocket::SendDatagram item;
        item.to = to;
        item.data = payloads[i].data();
        item.length = payloads[i].size();
        items.push_back(item);
    }
    size_t first_error = 99;
    ASSERT_EQ(sender.sendMany(items.data(), items.size(), &first_error),
              count);
    EXPECT_EQ(first_error, count);

    // recvMany drains in bounded batches; loop until everything came
    // through (loopback keeps ordering, but don't depend on it).
    std::vector<std::string> got;
    uint8_t buffers[net::UdpSocket::kMaxBatch][256];
    net::UdpSocket::RecvDatagram metas[net::UdpSocket::kMaxBatch];
    while (got.size() < count) {
        size_t n = receiver.recvMany(&buffers[0][0], sizeof(buffers[0]),
                                     metas, net::UdpSocket::kMaxBatch,
                                     2.0);
        ASSERT_GT(n, 0u) << "timed out with " << got.size() << "/"
                         << count;
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(metas[i].from.port, sender.localPort());
            got.emplace_back(reinterpret_cast<char *>(buffers[i]),
                             metas[i].length);
        }
    }
    std::sort(got.begin(), got.end());
    std::sort(payloads.begin(), payloads.end());
    EXPECT_EQ(got, payloads);
}

TEST(BatchedSockets, RoundTripBatched)
{
    BatchSwitchGuard batching(true);
    exerciseRoundTrip(net::UdpSocket::kMaxBatch);
    exerciseRoundTrip(3);
}

TEST(BatchedSockets, RoundTripFallback)
{
    BatchSwitchGuard fallback(false);
    exerciseRoundTrip(net::UdpSocket::kMaxBatch);
    exerciseRoundTrip(1);
}

TEST(BatchedSockets, SendManyOverlongBatchLoops)
{
    // More than kMaxBatch datagrams in one call: sendMany slices.
    BatchSwitchGuard batching(true);
    exerciseRoundTrip(net::UdpSocket::kMaxBatch + 7);
}

TEST(BatchedSockets, SendManyReportsFirstFailure)
{
    net::UdpSocket receiver;
    receiver.bind(0);
    net::UdpSocket sender;
    net::Endpoint good{*net::resolveHost("127.0.0.1"),
                       receiver.localPort()};
    net::Endpoint bad{*net::resolveHost("127.0.0.1"), 0}; // EINVAL

    const char payload[] = "x";
    net::UdpSocket::SendDatagram items[3];
    for (auto &item : items) {
        item.to = good;
        item.data = payload;
        item.length = 1;
    }
    items[1].to = bad;

    size_t first_error = 99;
    size_t sent = sender.sendMany(items, 3, &first_error);
    EXPECT_EQ(sent, 2u);
    EXPECT_EQ(first_error, 1u);
}

TEST(UpdateBatcher, BatchesATickIntoOneFlush)
{
    net::UdpSocket receiver;
    receiver.bind(0);
    auto socket = std::make_shared<net::UdpSocket>();
    net::Endpoint to{*net::resolveHost("127.0.0.1"),
                     receiver.localPort()};

    monitor::UpdateBatcher batcher(socket, to);
    monitor::Monitord::Sink sink = batcher.sink();
    for (int i = 0; i < 5; ++i) {
        proto::UtilizationUpdate update;
        update.machine = "m1";
        update.component = "cpu";
        update.utilization = 0.1 * i;
        update.sequence = uint64_t(i);
        sink(update);
    }
    EXPECT_EQ(batcher.queued(), 5u);
    EXPECT_EQ(batcher.datagramsSent(), 0u);
    batcher.flush();
    EXPECT_EQ(batcher.queued(), 0u);
    EXPECT_EQ(batcher.datagramsSent(), 5u);
    EXPECT_EQ(batcher.sendErrors(), 0u);

    uint8_t buffers[net::UdpSocket::kMaxBatch][proto::kMessageSize];
    net::UdpSocket::RecvDatagram metas[net::UdpSocket::kMaxBatch];
    size_t got = 0;
    while (got < 5) {
        size_t n = receiver.recvMany(&buffers[0][0], proto::kMessageSize,
                                     metas, net::UdpSocket::kMaxBatch,
                                     2.0);
        ASSERT_GT(n, 0u);
        for (size_t i = 0; i < n; ++i) {
            auto message = proto::decode(buffers[i], metas[i].length);
            ASSERT_TRUE(message.has_value());
            auto *update =
                std::get_if<proto::UtilizationUpdate>(&*message);
            ASSERT_NE(update, nullptr);
            EXPECT_EQ(update->machine, "m1");
            ++got;
        }
    }
}

/**
 * One hammer client: ships a deterministic sequenced update stream for
 * its own machine (deliberately skipping some sequence numbers so the
 * expected loss count is exact), interleaved with sensor-read RPCs.
 */
struct HammerClient
{
    std::string machine;
    uint64_t sent = 0;
    uint64_t skipped = 0;
    uint64_t readsAnswered = 0;
    double finalUtilization = 0.0;

    void
    run(uint16_t port, uint64_t updates, bool with_reads)
    {
        net::UdpSocket socket;
        net::Endpoint solver{*net::resolveHost("127.0.0.1"), port};
        uint32_t request_id = 1;
        for (uint64_t seq = 0; seq < updates; ++seq) {
            if (seq % 7 == 3 && seq + 1 != updates) {
                // A deliberate gap the solver must account as lost.
                ++skipped;
                continue;
            }
            proto::UtilizationUpdate update;
            update.machine = machine;
            update.component = "cpu";
            update.utilization =
                0.25 + 0.5 * double(seq) / double(updates);
            update.sequence = seq;
            proto::Packet packet = proto::encode(update);
            ASSERT_TRUE(
                socket.sendTo(solver, packet.data(), packet.size()));
            ++sent;
            finalUtilization = update.utilization;

            if (with_reads && seq % 16 == 5) {
                proto::SensorRequest request;
                request.requestId = request_id++;
                request.machine = machine;
                request.component = "cpu";
                proto::Packet ask = proto::encode(request);
                ASSERT_TRUE(
                    socket.sendTo(solver, ask.data(), ask.size()));
                uint8_t buffer[proto::kMessageSize];
                auto got =
                    socket.recvFrom(buffer, sizeof(buffer), nullptr, 1.0);
                if (got) {
                    auto message = proto::decode(buffer, *got);
                    ASSERT_TRUE(message.has_value());
                    ASSERT_NE(
                        std::get_if<proto::SensorReply>(&*message),
                        nullptr);
                    ++readsAnswered;
                }
            }
            // Pace the stream so loopback socket buffers never shed
            // packets — the loss ledger must come out exact.
            if (seq % 8 == 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
        }
    }
};

/** Drive one daemon with 4 concurrent clients; return its solver's
 *  trajectory fingerprint after stepping it deterministically. */
void
hammerDaemon(unsigned serve_threads, const std::string &shm_name,
             std::vector<double> *fingerprint,
             std::vector<double> *final_utilizations)
{
    constexpr unsigned kClients = 4;
    constexpr uint64_t kUpdates = 160;

    core::Solver solver;
    for (unsigned i = 0; i < kClients; ++i)
        solver.addMachine(
            core::table1Server("m" + std::to_string(i)));

    metrics::Registry registry;
    proto::SolverDaemon::Config config;
    config.port = 0;
    config.serveThreads = serve_threads;
    config.iterationSeconds = 0.0; // stepped manually below
    config.statsLogSeconds = 0.0;
    config.shmName = shm_name;
    config.registry = &registry;
    proto::SolverDaemon daemon(solver, config);
    EXPECT_EQ(daemon.requestPlane().workers(), serve_threads);
    std::thread server([&] { daemon.run(); });

    std::vector<HammerClient> clients(kClients);
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kClients; ++i) {
        clients[i].machine = "m" + std::to_string(i);
        threads.emplace_back([&, i] {
            clients[i].run(daemon.port(), kUpdates, /*with_reads=*/true);
        });
    }
    for (auto &thread : threads)
        thread.join();

    uint64_t total_sent = 0, total_skipped = 0, reads_answered = 0;
    for (const HammerClient &client : clients) {
        total_sent += client.sent;
        total_skipped += client.skipped;
        reads_answered += client.readsAnswered;
    }
    // Loopback with paced senders: every datagram arrives, so the
    // ledger must balance exactly — received == sent and the
    // deliberate sequence gaps are the entire loss count.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
        if (daemon.service().lossStats().received == total_sent &&
            daemon.service().updatesApplied() == total_sent &&
            daemon.requestPlane().queueDepth() == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    auto loss = daemon.service().lossStats();
    EXPECT_EQ(loss.received, total_sent);
    EXPECT_EQ(loss.lost, total_skipped);
    EXPECT_EQ(loss.duplicates, 0u);
    EXPECT_EQ(loss.reordered, 0u);
    EXPECT_EQ(loss.senders, kClients);
    EXPECT_EQ(daemon.service().updatesApplied(), total_sent);
    EXPECT_GT(reads_answered, 0u);
    EXPECT_EQ(daemon.requestPlane().replySendErrors(), 0u);

    // Per-sender exactness, not just in aggregate.
    for (const auto &record : daemon.service().exportSenders()) {
        unsigned index = unsigned(record.machine.back() - '0');
        ASSERT_LT(index, kClients);
        EXPECT_EQ(record.received, clients[index].sent)
            << record.machine;
        EXPECT_EQ(record.lost, clients[index].skipped)
            << record.machine;
    }

    daemon.stop();
    server.join();

    final_utilizations->clear();
    for (unsigned i = 0; i < kClients; ++i)
        final_utilizations->push_back(
            solver.machine("m" + std::to_string(i)).utilization("cpu"));

    // Deterministic stepping after the hammer: any divergence in what
    // the daemons applied shows up as a bitwise temperature mismatch.
    for (int i = 0; i < 500; ++i)
        solver.iterate();
    fingerprint->clear();
    for (unsigned i = 0; i < kClients; ++i) {
        std::string machine = "m" + std::to_string(i);
        fingerprint->push_back(solver.temperature(machine, "cpu"));
        fingerprint->push_back(
            solver.temperature(machine, "disk_platters"));
        fingerprint->push_back(solver.temperature(machine, "inlet"));
    }
}

TEST(RequestPlaneHammer, ShardedMatchesSerialBitwise)
{
    std::vector<double> serial_fp, sharded_fp;
    std::vector<double> serial_util, sharded_util;
    hammerDaemon(1, "", &serial_fp, &serial_util);
    hammerDaemon(4,
                 "/mercury.rpc_plane." + std::to_string(::getpid()),
                 &sharded_fp, &sharded_util);

    ASSERT_EQ(serial_util.size(), sharded_util.size());
    for (size_t i = 0; i < serial_util.size(); ++i)
        EXPECT_EQ(serial_util[i], sharded_util[i]) << "machine " << i;
    ASSERT_EQ(serial_fp.size(), sharded_fp.size());
    for (size_t i = 0; i < serial_fp.size(); ++i)
        EXPECT_EQ(serial_fp[i], sharded_fp[i]) << "entry " << i;
}

TEST(RequestPlaneHammer, ShardedDaemonSurvivesHammerWhileStepping)
{
    // TSan food: the solver thread iterates at full tilt while 4
    // clients mutate and read concurrently.
    constexpr unsigned kClients = 4;
    core::Solver solver;
    for (unsigned i = 0; i < kClients; ++i)
        solver.addMachine(core::table1Server("s" + std::to_string(i)));

    metrics::Registry registry;
    proto::SolverDaemon::Config config;
    config.port = 0;
    config.serveThreads = kClients;
    config.iterationSeconds = 0.001;
    config.statsLogSeconds = 0.0;
    config.registry = &registry;
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    std::vector<HammerClient> clients(kClients);
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kClients; ++i) {
        clients[i].machine = "s" + std::to_string(i);
        threads.emplace_back([&, i] {
            clients[i].run(daemon.port(), 96, /*with_reads=*/true);
        });
    }
    for (auto &thread : threads)
        thread.join();

    uint64_t total_sent = 0;
    for (const HammerClient &client : clients)
        total_sent += client.sent;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline &&
           daemon.service().updatesApplied() < total_sent)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(daemon.service().updatesApplied(), total_sent);
    EXPECT_GT(solver.iterations(), 0u);

    daemon.stop();
    server.join();
}

} // namespace
} // namespace mercury
