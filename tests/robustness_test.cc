/**
 * @file
 * Failure injection and robustness: broken sensors, red lines under
 * Freon-EC, room graphs with mixing plenums round-tripping through
 * the config language, and the workload generator's rate fidelity.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/solver.hh"
#include "freon/controller.hh"
#include "freon/tempd.hh"
#include "graphdot/parser.hh"
#include "graphdot/writer.hh"
#include "lb/load_balancer.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace mercury {
namespace {

TEST(SensorFailure, TempdNeverLiftsRestrictionsOnBrokenSensors)
{
    sim::Simulator simulator;
    std::map<std::string, double> temps{{"cpu", 70.0}, {"disk", 40.0}};
    bool cpu_sensor_broken = false;
    std::vector<freon::TempdReport> reports;
    freon::Tempd tempd(
        simulator, "m1", freon::FreonConfig::paperDefaults(),
        [&](const std::string &component) -> std::optional<double> {
            if (component == "cpu" && cpu_sensor_broken)
                return std::nullopt;
            return temps.at(component);
        },
        [&](const freon::TempdReport &report) {
            reports.push_back(report);
        });

    tempd.tick(); // hot -> restrictions installed
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(tempd.restricted());

    // The sensor dies while the machine might still be hot; the disk
    // is cool, but "all components below T_l" cannot be proven, so
    // the Cool transition must NOT fire.
    cpu_sensor_broken = true;
    temps["disk"] = 30.0;
    tempd.tick();
    tempd.tick();
    EXPECT_TRUE(tempd.restricted());
    for (size_t i = 1; i < reports.size(); ++i)
        EXPECT_NE(reports[i].kind, freon::TempdReport::Kind::Cool);

    // Sensor returns, machine is genuinely cool: restrictions lift.
    cpu_sensor_broken = false;
    temps["cpu"] = 40.0;
    tempd.tick();
    EXPECT_FALSE(tempd.restricted());
    EXPECT_EQ(reports.back().kind, freon::TempdReport::Kind::Cool);
}

TEST(SensorFailure, BrokenSensorNeverReportsHot)
{
    sim::Simulator simulator;
    std::vector<freon::TempdReport> reports;
    freon::Tempd tempd(
        simulator, "m1", freon::FreonConfig::paperDefaults(),
        [](const std::string &) { return std::nullopt; },
        [&](const freon::TempdReport &report) {
            reports.push_back(report);
        });
    tempd.tick();
    tempd.tick();
    EXPECT_TRUE(reports.empty());
}

TEST(FreonEc, RedlineForcesPowerOffWithReplacement)
{
    sim::Simulator simulator;
    cluster::ServerConfig server_config;
    server_config.maxQueueSeconds = 1e9;
    std::vector<std::unique_ptr<cluster::ServerMachine>> machines;
    lb::LoadBalancer balancer;
    for (int i = 0; i < 4; ++i) {
        machines.push_back(std::make_unique<cluster::ServerMachine>(
            simulator, "m" + std::to_string(i + 1), server_config));
        balancer.addServer(machines.back().get());
    }
    // m3 is off so a replacement exists.
    machines[2]->beginShutdown();
    balancer.setEnabled("m3", false);

    freon::FreonController::Options options;
    options.policy = freon::PolicyKind::FreonEC;
    options.regionOf = {{"m1", 0}, {"m3", 0}, {"m2", 1}, {"m4", 1}};
    freon::FreonController controller(simulator, balancer, options);
    controller.start();

    // Moderate utilization so one server cannot simply disappear.
    for (const char *name : {"m1", "m2", "m4"}) {
        freon::TempdReport status;
        status.machine = name;
        status.kind = freon::TempdReport::Kind::Status;
        status.utilizations = {{"cpu", 0.5}, {"disk", 0.1}};
        controller.onReport(status);
    }

    freon::TempdReport redline;
    redline.machine = "m1";
    redline.kind = freon::TempdReport::Kind::Hot;
    redline.output = 2.5;
    redline.redline = true;
    redline.utilizations = {{"cpu", 0.5}, {"disk", 0.1}};
    controller.onReport(redline);

    EXPECT_FALSE(balancer.server("m1").isOn());
    // The replacement boots from the healthy region's pool (m3 is the
    // only off machine).
    EXPECT_EQ(balancer.server("m3").powerState(),
              cluster::PowerState::Booting);
    EXPECT_EQ(controller.serversTurnedOn(), 1u);
}

TEST(GraphdotRoundTrip, RoomWithMixingPlenum)
{
    // A room that routes both machines through a shared plenum before
    // the return — exercises Mix nodes end to end.
    const char *source = R"(
machine box {
    node comp [kind=component, mass=0.3, c=800, pmin=5, pmax=20];
    node inlet [kind=inlet];
    node air [kind=air];
    node exhaust [kind=exhaust];
    comp -- air [k=2];
    inlet -> air [fraction=1];
    air -> exhaust [fraction=1];
}
room lab {
    source ac [temperature=19];
    mix plenum;
    sink return;
    machine b1 uses box;
    machine b2 uses box;
    ac -> b1 [fraction=0.5];
    ac -> b2 [fraction=0.5];
    b1 -> plenum [fraction=1];
    b2 -> plenum [fraction=1];
    plenum -> return [fraction=1];
}
)";
    graphdot::ParseResult first = graphdot::parseConfig(source);
    ASSERT_TRUE(first.ok()) << first.errors.front();

    std::string emitted = graphdot::toText(first.config);
    graphdot::ParseResult second = graphdot::parseConfig(emitted);
    ASSERT_TRUE(second.ok()) << second.errors.front();
    ASSERT_TRUE(second.config.room.has_value());
    EXPECT_EQ(second.config.room->nodes.size(), 5u);
    EXPECT_EQ(second.config.room->edges.size(), 5u);

    // And the round-tripped config actually runs. The room references
    // the 'box' template through nodes b1/b2, so the live solver needs
    // machines carrying those node names.
    core::MachineSpec b1 = second.config.machines[0];
    b1.name = "b1";
    core::MachineSpec b2 = second.config.machines[0];
    b2.name = "b2";
    core::Solver live;
    live.addMachine(b1);
    live.addMachine(b2);
    core::RoomSpec room = *second.config.room;
    for (core::RoomNodeSpec &node : room.nodes) {
        if (node.kind == core::RoomNodeKind::Machine)
            node.machine = node.name;
    }
    live.setRoom(room);
    live.setUtilization("b1", "comp", 1.0);
    live.run(20000.0);
    EXPECT_GT(live.room().temperature("plenum"), 19.0);
    EXPECT_NEAR(live.room().temperature("plenum"),
                live.room().temperature("return"), 1e-9);
}

TEST(WorkloadFidelity, WindowedRatesFollowTheDiurnalCurve)
{
    sim::Simulator simulator;
    cluster::ServerConfig config;
    config.maxQueueSeconds = 1e9;
    config.maxConnections = 1000000;
    cluster::ServerMachine machine(simulator, "sink", config);
    lb::LoadBalancer balancer;
    balancer.addServer(&machine);

    workload::WorkloadConfig wl;
    wl.duration = 2000.0;
    wl.seed = 5;
    workload::WorkloadGenerator generator(simulator, balancer, wl);

    // Count arrivals per 100 s window.
    std::vector<double> windows(20, 0.0);
    uint64_t last = 0;
    simulator.every(sim::seconds(100.0), [&] {
        size_t index = static_cast<size_t>(
            simulator.nowSeconds() / 100.0) - 1;
        if (index < windows.size()) {
            windows[index] =
                static_cast<double>(balancer.submitted() - last) / 100.0;
            last = balancer.submitted();
        }
        return true;
    });
    generator.start();
    simulator.runUntil(sim::seconds(2000.0));

    for (size_t i = 0; i < windows.size(); ++i) {
        double mid = 100.0 * static_cast<double>(i) + 50.0;
        double expected = generator.rateAt(mid);
        // Poisson noise over ~100 s windows: allow 15% + slack.
        EXPECT_NEAR(windows[i], expected, 0.15 * expected + 3.0)
            << "window " << i;
    }
}

} // namespace
} // namespace mercury
