/**
 * @file
 * Property-style tests (parameterized sweeps) over the thermal model,
 * the room model, the wire format, the parser and the load balancer:
 * invariants that must hold across whole input families, not just
 * hand-picked cases.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/room.hh"
#include "core/solver.hh"
#include "core/thermal_graph.hh"
#include "graphdot/parser.hh"
#include "lb/load_balancer.hh"
#include "proto/messages.hh"
#include "sim/simulator.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace mercury {
namespace {

// ---------------------------------------------------------------------
// Property: the tiny machine's steady state matches the closed form
// for every (power, k, fan) combination.
// ---------------------------------------------------------------------

struct SteadyCase
{
    double power;
    double k;
    double fanCfm;
};

class SteadyStateProperty : public ::testing::TestWithParam<SteadyCase>
{
};

TEST_P(SteadyStateProperty, MatchesClosedForm)
{
    const SteadyCase param = GetParam();
    core::MachineSpec spec;
    spec.name = "tiny";
    spec.inletTemperature = 21.6;
    spec.fanCfm = param.fanCfm;
    spec.initialTemperature = 21.6;
    core::NodeSpec comp;
    comp.name = "comp";
    comp.kind = core::NodeKind::Component;
    comp.mass = 0.2;
    comp.specificHeat = 500.0;
    comp.minPower = param.power;
    comp.maxPower = param.power;
    comp.hasPower = true;
    spec.nodes.push_back(comp);
    for (auto [name, kind] :
         {std::pair{"inlet", core::NodeKind::Inlet},
          std::pair{"air", core::NodeKind::Air},
          std::pair{"exhaust", core::NodeKind::Exhaust}}) {
        core::NodeSpec node;
        node.name = name;
        node.kind = kind;
        spec.nodes.push_back(node);
    }
    spec.heatEdges.push_back({"comp", "air", param.k});
    spec.airEdges.push_back({"inlet", "air", 1.0});
    spec.airEdges.push_back({"air", "exhaust", 1.0});

    core::ThermalGraph graph(spec);
    for (int i = 0; i < 40000; ++i)
        graph.step(1.0);

    double mdot_c =
        units::cfmToKgPerS(param.fanCfm) * units::kAirSpecificHeat;
    double expected_air = 21.6 + param.power / mdot_c;
    double expected_comp = expected_air + param.power / param.k;
    EXPECT_NEAR(graph.temperature("air"), expected_air,
                0.002 * expected_air);
    EXPECT_NEAR(graph.temperature("comp"), expected_comp,
                0.002 * expected_comp);
}

INSTANTIATE_TEST_SUITE_P(
    PowerKFanSweep, SteadyStateProperty,
    ::testing::Values(SteadyCase{5.0, 0.5, 10.0},
                      SteadyCase{5.0, 2.0, 40.0},
                      SteadyCase{20.0, 0.5, 40.0},
                      SteadyCase{20.0, 8.0, 10.0},
                      SteadyCase{60.0, 2.0, 25.0},
                      SteadyCase{60.0, 8.0, 60.0},
                      SteadyCase{1.0, 0.1, 5.0},
                      SteadyCase{100.0, 20.0, 80.0}));

// ---------------------------------------------------------------------
// Property: on the Table 1 machine, for any utilization mix the
// exhaust enthalpy rise equals the total power, all air temperatures
// sit within [inlet, hottest solid], and mass is conserved.
// ---------------------------------------------------------------------

class Table1Invariants : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Table1Invariants, EnergyBoundsAndMass)
{
    Rng rng(GetParam());
    core::ThermalGraph graph(core::table1Server());
    graph.setUtilization("cpu", rng.uniform());
    graph.setUtilization("disk_platters", rng.uniform());
    for (int i = 0; i < 40000; ++i)
        graph.step(1.0);

    // Energy: everything generated leaves through the exhaust.
    double mdot_c =
        units::cfmToKgPerS(graph.fanCfm()) * units::kAirSpecificHeat;
    EXPECT_NEAR(graph.exhaustTemperature() - 21.6,
                graph.totalPower() / mdot_c, 0.05);

    // Mass: the exhaust carries exactly the fan's flow.
    EXPECT_NEAR(graph.massFlow(graph.nodeId("exhaust")),
                units::cfmToKgPerS(graph.fanCfm()), 1e-9);

    // Bounds: air temperatures between the inlet and the hottest
    // solid; no NaNs anywhere.
    double hottest_solid = 21.6;
    for (const std::string &name : graph.nodeNames()) {
        double value = graph.temperature(name);
        ASSERT_TRUE(std::isfinite(value)) << name;
        if (graph.nodeKind(graph.nodeId(name)) ==
            core::NodeKind::Component) {
            hottest_solid = std::max(hottest_solid, value);
        }
    }
    for (const std::string &name : graph.nodeNames()) {
        if (graph.nodeKind(graph.nodeId(name)) != core::NodeKind::Air)
            continue;
        double value = graph.temperature(name);
        EXPECT_GE(value, 21.6 - 1e-6) << name;
        EXPECT_LE(value, hottest_solid + 1e-6) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(UtilizationSeeds, Table1Invariants,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Property: temperatures are monotone in utilization.
// ---------------------------------------------------------------------

class Monotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(Monotonicity, MoreLoadNeverCools)
{
    double u = GetParam();
    core::ThermalGraph lo(core::table1Server());
    core::ThermalGraph hi(core::table1Server());
    lo.setUtilization("cpu", u);
    hi.setUtilization("cpu", std::min(1.0, u + 0.2));
    for (int i = 0; i < 30000; ++i) {
        lo.step(1.0);
        hi.step(1.0);
    }
    for (const char *node : {"cpu", "cpu_air", "exhaust", "motherboard"})
        EXPECT_GE(hi.temperature(node), lo.temperature(node) - 1e-9)
            << node << " at u=" << u;
}

INSTANTIATE_TEST_SUITE_P(UtilizationLevels, Monotonicity,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8));

// ---------------------------------------------------------------------
// Property: randomly mutated packets never crash the decoder, and it
// never mistakes garbage for a valid message unless magic+version+
// type happen to survive.
// ---------------------------------------------------------------------

TEST(WireFuzz, RandomPacketsNeverCrash)
{
    Rng rng(0xfeed);
    size_t decoded_ok = 0;
    for (int i = 0; i < 20000; ++i) {
        proto::Packet packet;
        for (auto &byte : packet)
            byte = static_cast<uint8_t>(rng.uniformInt(0, 255));
        if (proto::decode(packet))
            ++decoded_ok;
    }
    // Random 32-bit magic almost never matches.
    EXPECT_LT(decoded_ok, 3u);
}

TEST(WireFuzz, MutatedValidPacketsNeverCrash)
{
    Rng rng(0xbeef);
    proto::SensorRequest request{7, "machine1", "cpu"};
    for (int i = 0; i < 20000; ++i) {
        proto::Packet packet = proto::encode(request);
        int flips = static_cast<int>(rng.uniformInt(1, 8));
        for (int f = 0; f < flips; ++f) {
            size_t at = static_cast<size_t>(
                rng.uniformInt(0, proto::kMessageSize - 1));
            packet[at] ^= static_cast<uint8_t>(rng.uniformInt(1, 255));
        }
        auto message = proto::decode(packet); // must not crash
        (void)message;
    }
    SUCCEED();
}

// ---------------------------------------------------------------------
// Property: the parser survives a corpus of malformed configs with
// errors, never crashes, and never reports success.
// ---------------------------------------------------------------------

class ParserRobustness : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ParserRobustness, ReportsErrorsWithoutCrashing)
{
    graphdot::ParseResult result = graphdot::parseConfig(GetParam());
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.errors.empty());
}

INSTANTIATE_TEST_SUITE_P(
    MalformedCorpus, ParserRobustness,
    ::testing::Values(
        "machine {",
        "machine m { node }",
        "machine m { node a [kind=]; }",
        "machine m { a -> ; }",
        "machine m { a -- b [k=x]; }",
        "machine m { node inlet [kind=inlet] node b; }",
        "room r { source; }",
        "cluster c { machine m uses; }",
        "machine m {}}",
        "machine \"unterminated",
        "machine m { inlet_temperature = ; }",
        "machine m { node a [kind=component, mass=0.1, c=1]; }",
        "== not a config at all ==",
        "machine m1 {} machine m1 {}" /* second body empty too */));

// ---------------------------------------------------------------------
// Property: weighted least connections keeps equal-weight servers
// balanced within one connection, for any server count.
// ---------------------------------------------------------------------

class WlcBalance : public ::testing::TestWithParam<int>
{
};

TEST_P(WlcBalance, EqualWeightsStayWithinOneConnection)
{
    int servers = GetParam();
    sim::Simulator simulator;
    cluster::ServerConfig config;
    config.maxConnections = 100000;
    config.maxQueueSeconds = 1e9;
    std::vector<std::unique_ptr<cluster::ServerMachine>> machines;
    lb::LoadBalancer balancer;
    for (int i = 0; i < servers; ++i) {
        machines.push_back(std::make_unique<cluster::ServerMachine>(
            simulator, "s" + std::to_string(i), config));
        balancer.addServer(machines.back().get());
    }
    for (int i = 0; i < 997; ++i) {
        cluster::Request request;
        request.id = static_cast<uint64_t>(i);
        request.cpuSeconds = 50.0; // long-lived
        balancer.submit(request);
    }
    int lo = 1 << 30;
    int hi = 0;
    for (const std::string &name : balancer.serverNames()) {
        lo = std::min(lo, balancer.activeConnections(name));
        hi = std::max(hi, balancer.activeConnections(name));
    }
    EXPECT_LE(hi - lo, 1);
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, WlcBalance,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

// ---------------------------------------------------------------------
// Property: room mixing never produces temperatures outside the range
// of its inputs (AC supply .. hottest machine exhaust).
// ---------------------------------------------------------------------

class RoomBounds : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RoomBounds, MixedTemperaturesStayWithinInputs)
{
    Rng rng(GetParam());
    core::Solver solver;
    std::vector<std::string> names{"m1", "m2", "m3"};
    for (const std::string &name : names)
        solver.addMachine(core::table1Server(name));
    double ac = rng.uniform(15.0, 25.0);
    solver.setRoom(core::table1Room(names, ac));
    for (const std::string &name : names)
        solver.setUtilization(name, "cpu", rng.uniform());
    solver.run(30000.0);

    double hottest_exhaust = ac;
    for (const std::string &name : names) {
        hottest_exhaust = std::max(
            hottest_exhaust, solver.machine(name).exhaustTemperature());
        EXPECT_NEAR(solver.machine(name).inletTemperature(), ac, 1e-9);
    }
    double mixed = solver.room().temperature("cluster_exhaust");
    EXPECT_GE(mixed, ac - 1e-9);
    EXPECT_LE(mixed, hottest_exhaust + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RoomSeeds, RoomBounds,
                         ::testing::Range<uint64_t>(100, 108));

} // namespace
} // namespace mercury
