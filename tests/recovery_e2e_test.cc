/**
 * @file
 * Supervised crash-recovery end to end, with real processes and real
 * UDP: mercury_supervisord keeps a mercury_solverd alive; the test
 * kill -9s the solver mid-run under live monitord load, watches the
 * supervisor restart it from the latest checkpoint, watches monitord
 * replay its outage backlog, and finally compares the recovered
 * trajectory against an uninterrupted in-process reference.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hh"
#include "monitor/monitord.hh"
#include "net/udp.hh"
#include "sensor/client.hh"
#include "state/checkpoint.hh"

#ifndef MERCURY_CONFIG_DIR
#define MERCURY_CONFIG_DIR "configs"
#endif
#ifndef MERCURY_SOLVERD_BIN
#define MERCURY_SOLVERD_BIN "mercury_solverd"
#endif
#ifndef MERCURY_SUPERVISORD_BIN
#define MERCURY_SUPERVISORD_BIN "mercury_supervisord"
#endif

namespace mercury {
namespace {

std::string
tempPath(const std::string &tag)
{
    return "/tmp/mercury_recovery_test." + tag + "." +
           std::to_string(::getpid());
}

pid_t
spawn(const std::vector<std::string> &command)
{
    pid_t pid = ::fork();
    if (pid == 0) {
        std::vector<char *> argv;
        for (const std::string &arg : command)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    return pid;
}

/** Kills and reaps the process on scope exit unless already reaped. */
struct ProcessGuard
{
    pid_t pid = -1;
    ~ProcessGuard()
    {
        if (pid > 0) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
        }
    }
    void disarm() { pid = -1; }
};

/** Wait for @p pid to exit; returns its status, or nullopt on timeout. */
std::optional<int>
waitForExit(pid_t pid, double timeout_seconds)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeout_seconds);
    while (std::chrono::steady_clock::now() < deadline) {
        int status = 0;
        pid_t got = ::waitpid(pid, &status, WNOHANG);
        if (got == pid)
            return status;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return std::nullopt;
}

/** First live process whose parent is @p parent (scans /proc). */
pid_t
findChildOf(pid_t parent)
{
    DIR *proc = ::opendir("/proc");
    if (!proc)
        return -1;
    pid_t found = -1;
    while (dirent *entry = ::readdir(proc)) {
        std::string name = entry->d_name;
        if (name.empty() || name.find_first_not_of("0123456789") !=
                                std::string::npos) {
            continue;
        }
        std::ifstream stat("/proc/" + name + "/stat");
        std::string line;
        if (!std::getline(stat, line))
            continue;
        // Fields after the parenthesized command: state, then ppid.
        size_t close = line.rfind(')');
        if (close == std::string::npos)
            continue;
        std::istringstream rest(line.substr(close + 1));
        std::string state;
        long ppid = 0;
        rest >> state >> ppid;
        if (ppid == parent) {
            found = static_cast<pid_t>(std::stol(name));
            break;
        }
    }
    ::closedir(proc);
    return found;
}

/** Value of a "key=value" field inside a stats line, or -1. */
long long
statsField(const std::string &stats, const std::string &key)
{
    size_t pos = stats.find(key + "=");
    if (pos == std::string::npos ||
        (pos != 0 && stats[pos - 1] != ' ')) {
        return -1;
    }
    pos += key.size() + 1;
    size_t end = stats.find(' ', pos);
    try {
        return std::stoll(stats.substr(pos, end - pos));
    } catch (...) {
        return -1;
    }
}

TEST(RecoveryE2E, Kill9MidRunRestartsFromCheckpointAndReplaysBacklog)
{
    const uint16_t port =
        static_cast<uint16_t>(42000 + (::getpid() % 10000));
    const std::string checkpoint_path = tempPath("chaos");
    std::remove(checkpoint_path.c_str());

    ProcessGuard supervisor;
    supervisor.pid = spawn({
        MERCURY_SUPERVISORD_BIN,
        "--solver-port", std::to_string(port),
        "--probe-seconds", "0.2",
        "--stall-seconds", "30",
        // Long enough downtime that monitord reliably sees the outage.
        "--initial-backoff", "0.5",
        "--max-backoff", "1.0",
        "--",
        MERCURY_SOLVERD_BIN,
        "--config", std::string(MERCURY_CONFIG_DIR) + "/table1_server.dot",
        "--port", std::to_string(port),
        "--iteration-seconds", "0.02",
        "--checkpoint-path", checkpoint_path,
        "--checkpoint-seconds", "0.25",
        // Quiescence enabled across the kill/restore cycle: restore
        // must wake the fleet and still converge within 0.1 degC.
        "--quiescence-epsilon", "0.05",
        "--quiescence-refresh", "32",
        "--no-shm",
    });
    ASSERT_GT(supervisor.pid, 0);

    // Wait for the daemon to answer.
    sensor::SensorClient probe(
        std::make_unique<sensor::UdpTransport>("127.0.0.1", port, 0.1, 1),
        "server");
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i)
        up = probe.fiddle("stats").first;
    ASSERT_TRUE(up) << "solverd never came up on port " << port;

    // monitord load: constant cpu utilization over real UDP, with the
    // outage backlog enabled.
    auto source = std::make_unique<monitor::SyntheticSource>();
    source->addComponent("cpu", [](double) { return 1.0; });
    auto socket = std::make_shared<net::UdpSocket>();
    net::Endpoint solver_endpoint{*net::resolveHost("127.0.0.1"), port};
    monitor::Monitord monitord(
        "server", std::move(source),
        monitor::Monitord::udpSink(socket, solver_endpoint));
    monitord.enableBacklog({600, monitor::Monitord::GapFillPolicy::Replay});

    double tick_clock = 0.0;
    auto tick = [&](int rounds) {
        for (int i = 0; i < rounds; ++i) {
            monitord.setOnline(probe.fiddle("stats").first);
            monitord.tick(tick_clock);
            tick_clock += 1.0;
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
        }
    };

    // Run under load until at least one checkpoint has been written.
    state::Checkpoint mid;
    bool checkpointed = false;
    for (int i = 0; i < 100 && !checkpointed; ++i) {
        tick(1);
        std::string error;
        checkpointed =
            state::loadCheckpointFile(checkpoint_path, &mid, &error) &&
            mid.iterations > 0;
    }
    ASSERT_TRUE(checkpointed) << "no checkpoint appeared";

    // Chaos: kill -9 the solver out from under the supervisor.
    pid_t solverd = findChildOf(supervisor.pid);
    ASSERT_GT(solverd, 0) << "cannot find the supervised solverd";
    ASSERT_EQ(::kill(solverd, SIGKILL), 0);

    // Keep the load coming; monitord must notice the outage and queue.
    bool went_offline = false;
    for (int i = 0; i < 150 && !went_offline; ++i) {
        tick(1);
        went_offline = !monitord.online();
    }
    EXPECT_TRUE(went_offline) << "monitord never noticed the outage";

    // The supervisor restarts the solver; monitord reconnects and
    // replays its backlog.
    bool recovered = false;
    for (int i = 0; i < 300 && !recovered; ++i) {
        tick(1);
        recovered = monitord.online();
    }
    ASSERT_TRUE(recovered) << "solverd never came back";
    EXPECT_GT(monitord.backlogReplayed(), 0u);
    EXPECT_EQ(monitord.backlogDepth(), 0u);

    // The restarted daemon restored the checkpoint and kept going.
    tick(10);
    auto [ok, stats] = probe.fiddle("stats");
    ASSERT_TRUE(ok) << stats;
    long long restored_at = statsField(stats, "rit");
    EXPECT_GT(restored_at, 0) << stats;
    EXPECT_GE(statsField(stats, "it"), restored_at) << stats;
    EXPECT_GE(statsField(stats, "ck"), 0) << stats;

    // Graceful shutdown: the supervisor forwards SIGTERM, the child
    // writes its final checkpoint, everyone exits 0.
    ASSERT_EQ(::kill(supervisor.pid, SIGTERM), 0);
    auto status = waitForExit(supervisor.pid, 15.0);
    ASSERT_TRUE(status.has_value()) << "supervisor did not exit";
    supervisor.disarm();
    ASSERT_TRUE(WIFEXITED(*status));
    EXPECT_EQ(WEXITSTATUS(*status), 0);

    // The final checkpoint continues the pre-crash trajectory...
    state::Checkpoint final_state;
    std::string error;
    ASSERT_TRUE(
        state::loadCheckpointFile(checkpoint_path, &final_state, &error))
        << error;
    EXPECT_GT(final_state.iterations, mid.iterations);

    // ...and stays within 0.1 degC of an uninterrupted in-process
    // reference advanced to the same iteration count under the same
    // load.
    core::SolverConfig reference_config;
    reference_config.iterationSeconds = 0.02;
    core::Solver reference(reference_config);
    reference.addMachine(core::table1Server("server"));
    reference.setUtilization("server", "cpu", 1.0);
    for (uint64_t i = 0; i < final_state.iterations; ++i)
        reference.iterate();
    state::Checkpoint want = state::captureSolver(reference);
    ASSERT_EQ(final_state.machines.size(), 1u);
    ASSERT_EQ(final_state.machines[0].temperatures.size(),
              want.machines[0].temperatures.size());
    for (size_t i = 0; i < want.machines[0].temperatures.size(); ++i) {
        EXPECT_NEAR(final_state.machines[0].temperatures[i],
                    want.machines[0].temperatures[i], 0.1)
            << "node " << i;
    }

    std::remove(checkpoint_path.c_str());
}

TEST(RecoveryE2E, SupervisorGivesUpOnACrashLoop)
{
    ProcessGuard supervisor;
    supervisor.pid = spawn({
        MERCURY_SUPERVISORD_BIN,
        "--probe-seconds", "0",
        "--initial-backoff", "0.05",
        "--max-backoff", "0.1",
        "--crash-loop-threshold", "3",
        "--crash-loop-window", "60",
        "--",
        "/bin/false",
    });
    ASSERT_GT(supervisor.pid, 0);
    auto status = waitForExit(supervisor.pid, 15.0);
    ASSERT_TRUE(status.has_value()) << "supervisor never gave up";
    supervisor.disarm();
    ASSERT_TRUE(WIFEXITED(*status));
    EXPECT_NE(WEXITSTATUS(*status), 0);
}

TEST(RecoveryE2E, SupervisorPassesThroughACleanExit)
{
    ProcessGuard supervisor;
    supervisor.pid = spawn({
        MERCURY_SUPERVISORD_BIN,
        "--probe-seconds", "0",
        "--",
        "/bin/true",
    });
    ASSERT_GT(supervisor.pid, 0);
    auto status = waitForExit(supervisor.pid, 15.0);
    ASSERT_TRUE(status.has_value());
    supervisor.disarm();
    ASSERT_TRUE(WIFEXITED(*status));
    EXPECT_EQ(WEXITSTATUS(*status), 0);
}

} // namespace
} // namespace mercury
