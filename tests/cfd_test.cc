/**
 * @file
 * Tests for the 2-D steady-state CFD substitute (Section 3.2's
 * Fluent replacement).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cfd/cfd2d.hh"
#include "util/units.hh"

namespace mercury {
namespace cfd {
namespace {

TEST(CfdSolver, ConvergesOnServerCase)
{
    CfdSolver solver(serverCase(31.0, 14.0, 40.0));
    SolveStats stats = solver.solve();
    EXPECT_TRUE(stats.converged)
        << "residual " << stats.residual << " after " << stats.iterations;
    EXPECT_GT(stats.iterations, 10);
}

TEST(CfdSolver, BlocksAreHotterThanAmbient)
{
    CfdSolver solver(serverCase(31.0, 14.0, 40.0));
    solver.solve();
    for (const char *name : {"cpu", "disk", "ps"}) {
        EXPECT_GT(solver.blockMeanTemperature(name), 22.0) << name;
        EXPECT_GT(solver.blockMaxTemperature(name),
                  solver.blockMeanTemperature(name) - 1e-9)
            << name;
        EXPECT_GT(solver.blockMeanTemperature(name),
                  solver.airTemperatureNear(name))
            << name;
    }
}

TEST(CfdSolver, EnergyConservation)
{
    CfdSolver solver(serverCase(31.0, 14.0, 40.0));
    solver.solve();
    double rise = solver.outletMeanTemperature() - 21.6;
    double expected = 85.0 / (solver.massFlow() * units::kAirSpecificHeat);
    // The Dirichlet inlet admits a small diffusive leak; 10% is ample.
    EXPECT_NEAR(rise, expected, 0.1 * expected);
}

TEST(CfdSolver, ZeroPowerStaysAtInletTemperature)
{
    CfdSolver solver(serverCase(0.0, 0.0, 0.0));
    solver.solve();
    for (int j = 0; j < solver.ny(); j += 5) {
        for (int i = 0; i < solver.nx(); i += 10)
            EXPECT_NEAR(solver.temperature(i, j), 21.6, 1e-6);
    }
}

TEST(CfdSolver, TemperatureRisesScaleLinearlyWithPower)
{
    CfdSolver one(serverCase(20.0, 10.0, 30.0));
    CfdSolver two(serverCase(40.0, 20.0, 60.0));
    one.solve();
    two.solve();
    for (const char *name : {"cpu", "disk", "ps"}) {
        double rise1 = one.blockMeanTemperature(name) - 21.6;
        double rise2 = two.blockMeanTemperature(name) - 21.6;
        EXPECT_NEAR(rise2, 2.0 * rise1, 0.02 * rise2) << name;
    }
}

TEST(CfdSolver, MorePowerMeansHotterBlock)
{
    CfdSolver low(serverCase(10.0, 14.0, 40.0));
    CfdSolver high(serverCase(31.0, 14.0, 40.0));
    low.solve();
    high.solve();
    EXPECT_GT(high.blockMeanTemperature("cpu"),
              low.blockMeanTemperature("cpu") + 1.0);
    // The disk sits upstream of the CPU, so its own temperature is
    // almost unaffected by CPU power.
    EXPECT_NEAR(high.blockMeanTemperature("disk"),
                low.blockMeanTemperature("disk"), 0.3);
}

TEST(CfdSolver, EffectiveKIsStableAcrossPowers)
{
    // The boundary constant extracted for Mercury should be a
    // property of the geometry/flow, not of the dissipated power.
    CfdSolver low(serverCase(15.0, 7.0, 20.0));
    CfdSolver high(serverCase(31.0, 14.0, 40.0));
    low.solve();
    high.solve();
    for (const char *name : {"cpu", "disk", "ps"}) {
        double k_low = low.effectiveK(name);
        double k_high = high.effectiveK(name);
        EXPECT_GT(k_low, 0.0) << name;
        EXPECT_NEAR(k_low, k_high, 0.05 * k_high) << name;
    }
}

TEST(CfdSolver, SolidCellsMatchBlockRegions)
{
    CfdSolver solver(serverCase(31.0, 14.0, 40.0));
    // CPU block is at x [0.22, 0.26], y [0.055, 0.095]; cell 5 mm.
    EXPECT_TRUE(solver.isSolid(45, 13));  // (0.2275, 0.0675)
    EXPECT_FALSE(solver.isSolid(45, 25)); // above the CPU
    EXPECT_FALSE(solver.isSolid(2, 15));  // inlet region
}

TEST(CfdSolver, DownstreamAirIsWarm)
{
    CfdSolver solver(serverCase(31.0, 14.0, 40.0));
    solver.solve();
    // Column behind the CPU should contain cells warmer than inlet.
    double warmest = 0.0;
    int i = static_cast<int>(0.30 / 0.005);
    for (int j = 0; j < solver.ny(); ++j)
        warmest = std::max(warmest, solver.temperature(i, j));
    EXPECT_GT(warmest, 23.0);
}

TEST(CfdSolver, HeatCarryingFractionIsReasonable)
{
    CfdSolver solver(serverCase(31.0, 14.0, 40.0));
    solver.solve();
    for (const char *name : {"cpu", "disk", "ps"}) {
        double fraction = solver.heatCarryingFraction(name);
        EXPECT_GT(fraction, 0.005) << name;
        EXPECT_LE(fraction, 1.0) << name;
    }
}

} // namespace
} // namespace cfd
} // namespace mercury
