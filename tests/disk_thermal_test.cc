/**
 * @file
 * Disk-driven thermal management. Freon monitors "the temperature of
 * the CPU(s) and disk(s) of the server" and its remote throttling
 * explicitly "allows the throttling of other components besides the
 * CPU, such as disks" (Section 4.3). These tests drive the *disk*
 * over its thresholds and check the same machinery responds.
 */

#include <gtest/gtest.h>

#include "freon/experiment.hh"

namespace mercury {
namespace freon {
namespace {

/**
 * A disk-bound scenario: most requests hit the disk hard, and the
 * disk thresholds are set for the Table 1 drive's reachable range
 * (platters run ~1.1 degC/W above the inlet: idle +10, flat-out +16).
 */
ExperimentConfig
diskBoundConfig(PolicyKind policy)
{
    ExperimentConfig config;
    config.policy = policy;
    config.workload.duration = 2000.0;
    // Disk-heavy mix: every static request misses the cache and reads
    // a large file; CGI stays cheap on the CPU side.
    config.workload.staticDiskProbability = 1.0;
    config.workload.staticDiskSeconds = 0.012;
    config.workload.cgiDiskSeconds = 0.012;
    // Size the peak by the disk: mean disk demand 12 ms/request, so
    // 70% of 4 disks needs ~233 req/s.
    config.workload.peakRate = 0.70 * 4 / 0.012;
    // Thresholds the Table 1 drive can actually reach under an inlet
    // emergency; the CPU thresholds stay out of the picture.
    config.freon.components["disk"] = Thresholds{50.0, 47.0, 52.0};
    config.freon.components["cpu"] = Thresholds{74.0, 71.0, 76.0};
    // The same two Figure 11 emergencies.
    config.emergencies.push_back({480.0, "m1", 38.6});
    return config;
}

TEST(DiskThermal, UnmanagedDiskCrossesItsThreshold)
{
    ExperimentResult result =
        runExperiment(diskBoundConfig(PolicyKind::None));
    double m1_disk_peak = result.diskTemperature.at("m1").maxValue();
    EXPECT_GT(m1_disk_peak, 50.0);   // over T_h^disk
    // The CPU is bored in this workload: far below its threshold.
    EXPECT_LT(result.peakCpuTemperature.at("m1"), 74.0);
}

TEST(DiskThermal, FreonThrottlesTheDiskRemotely)
{
    ExperimentResult none =
        runExperiment(diskBoundConfig(PolicyKind::None));
    ExperimentResult freon =
        runExperiment(diskBoundConfig(PolicyKind::FreonBase));

    // Freon acted (the Hot reports came from the disk component)...
    EXPECT_GT(freon.weightAdjustments, 0u);
    // ...kept the disk below the unmanaged peak and under the red
    // line, without powering anything off or dropping requests.
    double managed = freon.diskTemperature.at("m1").maxValue();
    double unmanaged = none.diskTemperature.at("m1").maxValue();
    EXPECT_LT(managed, unmanaged);
    EXPECT_LT(managed, 52.0);
    EXPECT_EQ(freon.serversTurnedOff, 0u);
    EXPECT_EQ(freon.dropped, 0u);
}

TEST(DiskThermal, CoolDisksNeverTrigger)
{
    // Same disk-heavy workload but no emergency: everything stays
    // under T_h and Freon never interferes.
    ExperimentConfig config = diskBoundConfig(PolicyKind::FreonBase);
    config.emergencies.clear();
    ExperimentResult result = runExperiment(config);
    EXPECT_EQ(result.weightAdjustments, 0u);
    EXPECT_LT(result.diskTemperature.at("m1").maxValue(), 50.0);
}

} // namespace
} // namespace freon
} // namespace mercury
