/**
 * @file
 * The replication subsystem in-process: WAL encode/decode and tail
 * tolerance, the compact mutation codec, bitwise replay (fresh and
 * from a checkpoint), the replication wire format, a primary/standby
 * loopback over real UDP, and the state hash.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/solver.hh"
#include "proto/solver_service.hh"
#include "proto/wal_codec.hh"
#include "replica/replicator.hh"
#include "replica/standby.hh"
#include "replica/wal.hh"
#include "replica/wire.hh"
#include "state/checkpoint.hh"

namespace mercury {
namespace {

std::string
tempPath(const std::string &tag)
{
    return "/tmp/mercury_replica_test." + tag + "." +
           std::to_string(::getpid());
}

core::SolverConfig
testSolverConfig()
{
    core::SolverConfig config;
    config.iterationSeconds = 1.0;
    return config;
}

void
addServer(core::Solver &solver)
{
    solver.addMachine(core::table1Server("server"));
}

proto::Message
utilizationMessage(double utilization, uint64_t sequence)
{
    proto::UtilizationUpdate update;
    update.machine = "server";
    update.component = "cpu";
    update.utilization = utilization;
    update.sequence = sequence;
    return update;
}

std::vector<uint8_t>
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
}

TEST(WalCodec, UtilizationRoundTrip)
{
    proto::UtilizationUpdate update;
    update.machine = "server";
    update.component = "disk";
    update.utilization = 0.728515625;
    update.sequence = 91234;
    update.backlog = 17;
    update.substituted = 1;

    auto payload = proto::encodeWalMutation(update);
    ASSERT_FALSE(payload.empty());
    auto decoded =
        proto::decodeWalMutation(payload.data(), payload.size());
    ASSERT_TRUE(decoded.has_value());
    const auto *got = std::get_if<proto::UtilizationUpdate>(&*decoded);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->machine, update.machine);
    EXPECT_EQ(got->component, update.component);
    EXPECT_EQ(got->utilization, update.utilization); // bitwise
    EXPECT_EQ(got->sequence, update.sequence);
    EXPECT_EQ(got->backlog, update.backlog);
    EXPECT_EQ(got->substituted, update.substituted);
}

TEST(WalCodec, FiddleRoundTrip)
{
    proto::FiddleRequest request;
    request.requestId = 77;
    request.commandLine = "server pin cpu 55";

    auto payload = proto::encodeWalMutation(request);
    ASSERT_FALSE(payload.empty());
    auto decoded =
        proto::decodeWalMutation(payload.data(), payload.size());
    ASSERT_TRUE(decoded.has_value());
    const auto *got = std::get_if<proto::FiddleRequest>(&*decoded);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->requestId, request.requestId);
    EXPECT_EQ(got->commandLine, request.commandLine);
}

TEST(WalCodec, ReadOnlyFiddleLinesAreNotLoggable)
{
    EXPECT_FALSE(proto::fiddleLineMutates("stats"));
    EXPECT_FALSE(proto::fiddleLineMutates("metrics"));
    EXPECT_FALSE(proto::fiddleLineMutates("replica"));
    EXPECT_FALSE(proto::fiddleLineMutates("checkpoint"));
    EXPECT_FALSE(proto::fiddleLineMutates("guard"));
    EXPECT_FALSE(proto::fiddleLineMutates("guard page 2"));
    EXPECT_FALSE(proto::fiddleLineMutates("fiddle stats"));
    EXPECT_FALSE(proto::fiddleLineMutates("  "));
    EXPECT_TRUE(proto::fiddleLineMutates("server pin cpu 55"));
    EXPECT_TRUE(proto::fiddleLineMutates("fiddle server fan 120"));
    EXPECT_TRUE(proto::fiddleLineMutates("room ac crac1 18"));

    proto::FiddleRequest stats;
    stats.requestId = 1;
    stats.commandLine = "stats";
    EXPECT_TRUE(proto::encodeWalMutation(stats).empty());

    // Read RPCs never belong in the WAL at all.
    proto::SensorRequest read;
    read.machine = "server";
    read.component = "cpu";
    EXPECT_TRUE(proto::encodeWalMutation(read).empty());
}

TEST(WalCodec, HostileBytesAreRejected)
{
    EXPECT_FALSE(proto::decodeWalMutation(nullptr, 0).has_value());

    auto payload = proto::encodeWalMutation(utilizationMessage(0.5, 1));
    ASSERT_FALSE(payload.empty());
    // Every truncation must fail cleanly, never read out of bounds.
    for (size_t length = 0; length < payload.size(); ++length)
        EXPECT_FALSE(
            proto::decodeWalMutation(payload.data(), length).has_value())
            << "length " << length;

    std::vector<uint8_t> bad_tag = payload;
    bad_tag[0] = 0x7f;
    EXPECT_FALSE(
        proto::decodeWalMutation(bad_tag.data(), bad_tag.size())
            .has_value());

    std::vector<uint8_t> trailing = payload;
    trailing.push_back(0);
    EXPECT_FALSE(
        proto::decodeWalMutation(trailing.data(), trailing.size())
            .has_value());
}

TEST(Wal, WriterReaderRoundTrip)
{
    const std::string path = tempPath("roundtrip");
    std::remove(path.c_str());
    std::remove((path + ".old").c_str());

    replica::WalHeader header;
    header.topologyHash = 0xfeedface;
    header.startIteration = 12;
    header.startSequence = 5;
    std::string error;
    auto writer = replica::WalWriter::create(path, header, &error);
    ASSERT_NE(writer, nullptr) << error;

    for (uint64_t i = 0; i < 10; ++i) {
        replica::WalRecord record;
        record.sequence = 5 + i;
        record.iteration = 12 + i / 2;
        record.kind = i == 9 ? replica::WalRecordKind::CheckpointMarker
                             : replica::WalRecordKind::Mutation;
        record.payload.assign(i + 1, uint8_t(0x40 + i));
        writer->append(record);
    }
    EXPECT_TRUE(writer->sync());
    EXPECT_EQ(writer->recordsAppended(), 10u);
    writer.reset();

    replica::WalReadResult wal;
    ASSERT_TRUE(replica::readWalFile(path, &wal, &error)) << error;
    EXPECT_TRUE(wal.tailOk) << wal.tailError;
    EXPECT_EQ(wal.header.topologyHash, header.topologyHash);
    EXPECT_EQ(wal.header.startIteration, header.startIteration);
    EXPECT_EQ(wal.header.startSequence, header.startSequence);
    ASSERT_EQ(wal.records.size(), 10u);
    for (uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(wal.records[i].sequence, 5 + i);
        EXPECT_EQ(wal.records[i].payload.size(), i + 1);
    }
    EXPECT_EQ(wal.records[9].kind,
              replica::WalRecordKind::CheckpointMarker);
    std::remove(path.c_str());
}

TEST(Wal, TailCorruptionYieldsValidPrefix)
{
    const std::string path = tempPath("corrupt");
    std::remove(path.c_str());

    replica::WalHeader header;
    header.topologyHash = 1;
    std::string error;
    auto writer = replica::WalWriter::create(path, header, &error);
    ASSERT_NE(writer, nullptr) << error;
    for (uint64_t i = 0; i < 6; ++i) {
        replica::WalRecord record;
        record.sequence = 1 + i;
        record.iteration = i;
        record.payload.assign(8, uint8_t(i));
        writer->append(record);
    }
    ASSERT_TRUE(writer->sync());
    writer.reset();

    // Flip one byte inside the last record's payload.
    auto bytes = fileBytes(path);
    ASSERT_GT(bytes.size(), 4u);
    bytes[bytes.size() - 3] ^= 0xff;
    writeBytes(path, bytes);

    replica::WalReadResult wal;
    ASSERT_TRUE(replica::readWalFile(path, &wal, &error)) << error;
    EXPECT_FALSE(wal.tailOk);
    EXPECT_EQ(wal.records.size(), 5u);
    EXPECT_FALSE(wal.tailError.empty());

    // Truncation mid-record degrades the same way.
    writeBytes(path, std::vector<uint8_t>(bytes.begin(),
                                          bytes.end() - 10));
    ASSERT_TRUE(replica::readWalFile(path, &wal, &error)) << error;
    EXPECT_FALSE(wal.tailOk);
    EXPECT_EQ(wal.records.size(), 5u);
    std::remove(path.c_str());
}

TEST(Wal, SequenceBreakEndsThePrefix)
{
    const std::string path = tempPath("gap");
    std::remove(path.c_str());

    replica::WalHeader header;
    std::vector<uint8_t> bytes = replica::encodeWalHeader(header);
    for (uint64_t seq : {1, 2, 4}) { // 3 is missing
        replica::WalRecord record;
        record.sequence = seq;
        record.iteration = seq;
        record.payload = {uint8_t(seq)};
        replica::appendRecordBytes(bytes, record);
    }
    writeBytes(path, bytes);

    replica::WalReadResult wal;
    std::string error;
    ASSERT_TRUE(replica::readWalFile(path, &wal, &error)) << error;
    EXPECT_FALSE(wal.tailOk);
    EXPECT_EQ(wal.records.size(), 2u);
    std::remove(path.c_str());
}

TEST(Wal, CreatePreservesThePredecessorAsOld)
{
    const std::string path = tempPath("old");
    std::remove(path.c_str());
    std::remove((path + ".old").c_str());

    replica::WalHeader first;
    first.startIteration = 7;
    std::string error;
    auto writer = replica::WalWriter::create(path, first, &error);
    ASSERT_NE(writer, nullptr) << error;
    writer.reset();

    replica::WalHeader second;
    second.startIteration = 99;
    writer = replica::WalWriter::create(path, second, &error);
    ASSERT_NE(writer, nullptr) << error;
    writer.reset();

    replica::WalReadResult old_wal;
    ASSERT_TRUE(
        replica::readWalFile(path + ".old", &old_wal, &error))
        << error;
    EXPECT_EQ(old_wal.header.startIteration, 7u);
    replica::WalReadResult new_wal;
    ASSERT_TRUE(replica::readWalFile(path, &new_wal, &error)) << error;
    EXPECT_EQ(new_wal.header.startIteration, 99u);
    std::remove(path.c_str());
    std::remove((path + ".old").c_str());
}

/**
 * Drive a "live" solver the way the daemon does — iterate, then apply
 * drained mutations logged to a WAL — and prove replaying that WAL
 * into a fresh solver reproduces the run bitwise.
 */
TEST(WalReplay, ReproducesALiveRunBitwise)
{
    const std::string path = tempPath("replay");
    std::remove(path.c_str());

    core::Solver live(testSolverConfig());
    addServer(live);
    proto::SolverService live_service(live);

    replica::WalHeader header;
    header.topologyHash = state::topologyHash(live);
    header.startIteration = 0;
    std::string error;
    auto writer = replica::WalWriter::create(path, header, &error);
    ASSERT_NE(writer, nullptr) << error;

    uint64_t next_seq = 1;
    auto log_and_apply = [&](const proto::Message &message) {
        auto payload = proto::encodeWalMutation(message);
        ASSERT_FALSE(payload.empty());
        replica::WalRecord record;
        record.sequence = next_seq++;
        record.iteration = live.iterations();
        record.payload = std::move(payload);
        writer->append(record);
        live_service.handleReplicated(message);
    };

    for (int i = 0; i < 120; ++i) {
        live.iterate();
        if (i % 7 == 0)
            log_and_apply(
                utilizationMessage(0.15 + 0.007 * i, uint64_t(i + 1)));
        if (i == 40) {
            proto::FiddleRequest fiddle;
            fiddle.requestId = 9;
            fiddle.commandLine = "server fan 140";
            log_and_apply(fiddle);
        }
    }
    ASSERT_TRUE(writer->sync());
    writer.reset();

    core::Solver replayed(testSolverConfig());
    addServer(replayed);
    proto::SolverService replay_service(replayed);
    replica::WalReadResult wal;
    ASSERT_TRUE(replica::readWalFile(path, &wal, &error)) << error;
    ASSERT_TRUE(wal.tailOk) << wal.tailError;

    replica::ReplayStats stats;
    ASSERT_TRUE(replica::replayWal(
        replayed, wal,
        [&](const replica::WalRecord &record) {
            auto message = proto::decodeWalMutation(
                record.payload.data(), record.payload.size());
            ASSERT_TRUE(message.has_value());
            replay_service.handleReplicated(*message);
        },
        live.iterations(), &stats, &error))
        << error;

    EXPECT_EQ(stats.applied, next_seq - 1);
    EXPECT_EQ(replayed.iterations(), live.iterations());
    EXPECT_EQ(replica::stateHash(replayed), replica::stateHash(live));

    state::Checkpoint want = state::captureSolver(live);
    state::Checkpoint got = state::captureSolver(replayed);
    ASSERT_EQ(got.machines.size(), want.machines.size());
    for (size_t m = 0; m < want.machines.size(); ++m) {
        ASSERT_EQ(got.machines[m].temperatures.size(),
                  want.machines[m].temperatures.size());
        for (size_t n = 0; n < want.machines[m].temperatures.size(); ++n)
            EXPECT_EQ(got.machines[m].temperatures[n],
                      want.machines[m].temperatures[n]) // bitwise
                << "node " << n;
        EXPECT_EQ(got.machines[m].energyConsumed,
                  want.machines[m].energyConsumed);
    }
    std::remove(path.c_str());
}

/**
 * The checkpoint interaction: rotate the WAL at a mid-run checkpoint
 * save, keep running, then restore the checkpoint and replay only the
 * rotated suffix — landing bitwise on the live run.
 */
TEST(WalReplay, CheckpointPlusSuffixLandsBitwiseOnTheLiveRun)
{
    const std::string wal_path = tempPath("suffix.wal");
    const std::string checkpoint_path = tempPath("suffix.ck");
    std::remove(wal_path.c_str());
    std::remove((wal_path + ".old").c_str());
    std::remove(checkpoint_path.c_str());

    core::Solver live(testSolverConfig());
    addServer(live);
    proto::SolverService live_service(live);

    replica::WalHeader header;
    header.topologyHash = state::topologyHash(live);
    std::string error;
    auto writer = replica::WalWriter::create(wal_path, header, &error);
    ASSERT_NE(writer, nullptr) << error;

    uint64_t next_seq = 1;
    auto log_and_apply = [&](const proto::Message &message) {
        auto payload = proto::encodeWalMutation(message);
        ASSERT_FALSE(payload.empty());
        replica::WalRecord record;
        record.sequence = next_seq++;
        record.iteration = live.iterations();
        record.payload = std::move(payload);
        writer->append(record);
        live_service.handleReplicated(message);
    };

    for (int i = 0; i < 150; ++i) {
        live.iterate();
        if (i % 5 == 0)
            log_and_apply(
                utilizationMessage(0.9 - 0.004 * i, uint64_t(i + 1)));
        if (i == 75) {
            // Loop-top checkpoint save + rotation, daemon style.
            ASSERT_TRUE(state::saveCheckpointFile(
                checkpoint_path, state::captureSolver(live), &error))
                << error;
            replica::WalHeader fresh;
            fresh.topologyHash = header.topologyHash;
            fresh.startIteration = live.iterations();
            fresh.startSequence = next_seq;
            ASSERT_TRUE(writer->rotate(fresh, &error)) << error;
        }
    }
    ASSERT_TRUE(writer->sync());
    writer.reset();

    // Restore the checkpoint, replay only the post-rotation suffix.
    core::Solver resumed(testSolverConfig());
    addServer(resumed);
    proto::SolverService resumed_service(resumed);
    state::Checkpoint checkpoint;
    ASSERT_TRUE(state::loadCheckpointFile(checkpoint_path, &checkpoint,
                                          &error))
        << error;
    ASSERT_TRUE(state::restoreSolver(resumed, checkpoint, &error))
        << error;

    replica::WalReadResult wal;
    ASSERT_TRUE(replica::readWalFile(wal_path, &wal, &error)) << error;
    ASSERT_TRUE(wal.tailOk) << wal.tailError;
    EXPECT_EQ(wal.header.startIteration, checkpoint.iterations);

    replica::ReplayStats stats;
    ASSERT_TRUE(replica::replayWal(
        resumed, wal,
        [&](const replica::WalRecord &record) {
            auto message = proto::decodeWalMutation(
                record.payload.data(), record.payload.size());
            ASSERT_TRUE(message.has_value());
            resumed_service.handleReplicated(*message);
        },
        live.iterations(), &stats, &error))
        << error;

    EXPECT_EQ(resumed.iterations(), live.iterations());
    EXPECT_EQ(replica::stateHash(resumed), replica::stateHash(live));

    std::remove(wal_path.c_str());
    std::remove((wal_path + ".old").c_str());
    std::remove(checkpoint_path.c_str());
}

TEST(WalReplay, TopologyMismatchIsRefused)
{
    const std::string path = tempPath("topo");
    std::remove(path.c_str());

    replica::WalHeader header;
    header.topologyHash = 0xdeadbeef; // not the solver's
    writeBytes(path, replica::encodeWalHeader(header));

    core::Solver solver(testSolverConfig());
    addServer(solver);
    replica::WalReadResult wal;
    std::string error;
    ASSERT_TRUE(replica::readWalFile(path, &wal, &error)) << error;
    replica::ReplayStats stats;
    EXPECT_FALSE(replica::replayWal(
        solver, wal, [](const replica::WalRecord &) {}, 0, &stats,
        &error));
    EXPECT_NE(error.find("topology"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(ReplicaWire, MessagesRoundTrip)
{
    replica::ReplicaHello hello;
    hello.topologyHash = 0xabc;
    hello.lastAppliedSeq = 41;
    hello.standbyIteration = 12;
    auto bytes = replica::encodeReplica(hello);
    auto decoded = replica::decodeReplica(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.has_value());
    const auto *hello_got = std::get_if<replica::ReplicaHello>(&*decoded);
    ASSERT_NE(hello_got, nullptr);
    EXPECT_EQ(hello_got->lastAppliedSeq, 41u);

    replica::ReplicaRecords records;
    records.primaryIteration = 99;
    records.nextSeq = 8;
    for (uint64_t i = 0; i < 3; ++i) {
        replica::WalRecord record;
        record.sequence = 5 + i;
        record.iteration = 90 + i;
        record.payload.assign(6, uint8_t(i));
        records.records.push_back(record);
    }
    bytes = replica::encodeReplica(records);
    ASSERT_LE(bytes.size(), replica::kReplicaDatagramMax);
    decoded = replica::decodeReplica(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.has_value());
    const auto *records_got =
        std::get_if<replica::ReplicaRecords>(&*decoded);
    ASSERT_NE(records_got, nullptr);
    ASSERT_EQ(records_got->records.size(), 3u);
    EXPECT_EQ(records_got->records[2].sequence, 7u);

    // A corrupted record inside a Records datagram kills the decode
    // (the CRC travels with the record).
    bytes[bytes.size() - 2] ^= 0xff;
    EXPECT_FALSE(
        replica::decodeReplica(bytes.data(), bytes.size()).has_value());

    replica::ReplicaAck ack_msg;
    ack_msg.contiguousSeq = 20;
    ack_msg.appliedSeq = 19;
    ack_msg.standbyIteration = 18;
    ack_msg.hashIteration = 16;
    ack_msg.stateHash = 0xdeadbeefcafef00dull;
    ack_msg.hashValid = 1;
    bytes = replica::encodeReplica(ack_msg);
    decoded = replica::decodeReplica(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.has_value());
    const auto *ack_got = std::get_if<replica::ReplicaAck>(&*decoded);
    ASSERT_NE(ack_got, nullptr);
    EXPECT_EQ(ack_got->contiguousSeq, 20u);
    EXPECT_EQ(ack_got->appliedSeq, 19u);
    EXPECT_EQ(ack_got->stateHash, ack_msg.stateHash);
    EXPECT_EQ(ack_got->hashValid, 1);

    replica::ReplicaHeartbeat heartbeat;
    heartbeat.primaryIteration = 1234;
    heartbeat.nextSeq = 55;
    heartbeat.leaseSeconds = 2.5;
    heartbeat.hashIteration = 1216;
    heartbeat.stateHash = 0x1122334455667788ull;
    heartbeat.hashValid = 1;
    bytes = replica::encodeReplica(heartbeat);
    decoded = replica::decodeReplica(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.has_value());
    const auto *heartbeat_got =
        std::get_if<replica::ReplicaHeartbeat>(&*decoded);
    ASSERT_NE(heartbeat_got, nullptr);
    EXPECT_EQ(heartbeat_got->stateHash, heartbeat.stateHash);
    EXPECT_EQ(heartbeat_got->leaseSeconds, 2.5);

    // Truncations never decode.
    for (size_t length = 0; length < bytes.size(); ++length)
        EXPECT_FALSE(
            replica::decodeReplica(bytes.data(), length).has_value());
}

/** Primary and standby endpoints talking over loopback UDP. */
TEST(ReplicaLoopback, StreamsAcksAndVerifiesHashes)
{
    replica::Replicator::Config primary_config;
    primary_config.heartbeatSeconds = 0.05;
    primary_config.leaseSeconds = 0.8;
    primary_config.retransmitSeconds = 0.05;
    replica::Replicator primary(primary_config, /*topology_hash=*/7,
                                /*base_iteration=*/0,
                                /*base_sequence=*/1);
    ASSERT_GT(primary.port(), 0);

    uint64_t standby_iteration = 0;
    replica::StandbyClient::Config standby_config;
    standby_config.host = "127.0.0.1";
    standby_config.port = primary.port();
    standby_config.topologyHash = 7;
    standby_config.helloSeconds = 0.05;
    standby_config.ackSeconds = 0.01;
    standby_config.leaseSeconds = 0.8;
    standby_config.localIteration = [&] { return standby_iteration; };
    replica::StandbyClient standby(standby_config);

    uint64_t primary_iteration = 0;
    // The daemon's standby loop calls maybeAck() every pass; mirror
    // that, or the ack stream dries up after the first send.
    auto pump_both = [&](int rounds) {
        for (int i = 0; i < rounds; ++i) {
            standby.pump(0.01);
            standby.maybeAck();
            primary.poll(primary_iteration);
        }
    };

    pump_both(60);
    ASSERT_TRUE(standby.attached()) << standby.status();
    EXPECT_EQ(primary.standbyCount(), 1u);

    // Stream 20 records across several polls.
    std::vector<replica::WalRecord> applied;
    for (uint64_t seq = 1; seq <= 20; ++seq) {
        replica::WalRecord record;
        record.sequence = seq;
        record.iteration = seq;
        record.payload.assign(16, uint8_t(seq));
        primary.offer(record);
        primary_iteration = seq;
    }
    for (int round = 0; round < 200 && applied.size() < 20; ++round) {
        pump_both(1);
        while (const replica::WalRecord *record =
                   standby.nextApplicable()) {
            applied.push_back(*record);
            standby_iteration = record->iteration;
            standby.markApplied();
        }
        standby.maybeAck();
    }
    ASSERT_EQ(applied.size(), 20u);
    for (uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(applied[i].sequence, i + 1);
    EXPECT_EQ(standby.safeStepIteration(), 20u);
    EXPECT_FALSE(standby.leaseExpired());

    pump_both(40);
    EXPECT_EQ(primary.ackedSeq(), 20u);
    EXPECT_EQ(primary.standbyIteration(), 20u);

    // Matching state hashes: the standby echoes, the primary verifies.
    primary.noteHash(20, 0x5a5a5a5a);
    standby.noteLocalHash(20, 0x5a5a5a5a);
    for (int round = 0; round < 100 && primary.hashChecks() == 0;
         ++round) {
        pump_both(1);
        standby.maybeAck();
    }
    EXPECT_GE(primary.hashChecks(), 1u);
    EXPECT_EQ(primary.hashMismatches(), 0u);
    EXPECT_EQ(primary.lastHashVerdict(), 1);
}

TEST(ReplicaLoopback, InactivePrimaryAndTopologyMismatchRefuse)
{
    replica::Replicator::Config primary_config;
    primary_config.heartbeatSeconds = 0.05;
    replica::Replicator primary(primary_config, 7, 0, 1);
    primary.setActive(false);

    replica::StandbyClient::Config standby_config;
    standby_config.host = "127.0.0.1";
    standby_config.port = primary.port();
    standby_config.topologyHash = 7;
    standby_config.helloSeconds = 0.02;
    standby_config.graceSeconds = 30.0;
    standby_config.localIteration = [] { return uint64_t(0); };
    replica::StandbyClient refused(standby_config);
    for (int i = 0; i < 50 && !refused.everContacted(); ++i) {
        refused.pump(0.01);
        primary.poll(0);
    }
    EXPECT_TRUE(refused.everContacted());
    EXPECT_FALSE(refused.attached());
    // An answering (if refusing) peer suppresses grace promotion:
    // promoting against a live not-yet-primary would split the brain.
    EXPECT_FALSE(refused.leaseExpired());

    primary.setActive(true);
    standby_config.topologyHash = 8; // wrong cluster
    replica::StandbyClient mismatched(standby_config);
    for (int i = 0; i < 50 && !mismatched.everContacted(); ++i) {
        mismatched.pump(0.01);
        primary.poll(0);
    }
    EXPECT_TRUE(mismatched.everContacted());
    EXPECT_FALSE(mismatched.attached());
}

TEST(StateHash, TracksBitwiseState)
{
    core::Solver a(testSolverConfig());
    core::Solver b(testSolverConfig());
    addServer(a);
    addServer(b);
    EXPECT_EQ(replica::stateHash(a), replica::stateHash(b));

    for (int i = 0; i < 10; ++i) {
        a.iterate();
        b.iterate();
    }
    EXPECT_EQ(replica::stateHash(a), replica::stateHash(b));

    b.setUtilization("server", "cpu", 0.9);
    b.iterate();
    a.iterate();
    EXPECT_NE(replica::stateHash(a), replica::stateHash(b));
}

} // namespace
} // namespace mercury
