/**
 * @file
 * Tests for the snapshot/restore facility and the request-latency
 * accounting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "cluster/server_machine.hh"
#include "core/solver.hh"
#include "freon/experiment.hh"
#include "lb/load_balancer.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace {

TEST(StateSnapshot, SaveLoadRoundTripsExactly)
{
    core::Solver hot;
    hot.addMachine(core::table1Server("m1"));
    hot.addMachine(core::table1Server("m2"));
    hot.setUtilization("m1", "cpu", 0.9);
    hot.run(8000.0);

    std::ostringstream out;
    hot.saveState(out);

    core::Solver restored;
    restored.addMachine(core::table1Server("m1"));
    restored.addMachine(core::table1Server("m2"));
    std::istringstream in(out.str());
    restored.loadState(in);

    for (const std::string &machine : {std::string("m1"),
                                       std::string("m2")}) {
        for (const std::string &node :
             restored.machine(machine).nodeNames()) {
            EXPECT_NEAR(restored.temperature(machine, node),
                        hot.temperature(machine, node), 1e-6)
                << machine << "." << node;
        }
    }
}

TEST(StateSnapshot, WarmStartContinuesTheSameTrajectory)
{
    core::Solver original;
    original.addMachine(core::table1Server("m1"));
    original.setUtilization("m1", "cpu", 0.8);
    original.run(5000.0);

    std::ostringstream out;
    original.saveState(out);

    core::Solver warm;
    warm.addMachine(core::table1Server("m1"));
    warm.setUtilization("m1", "cpu", 0.8);
    std::istringstream in(out.str());
    warm.loadState(in);

    original.run(500.0);
    warm.run(500.0);
    EXPECT_NEAR(warm.temperature("m1", "cpu"),
                original.temperature("m1", "cpu"), 1e-6);
}

TEST(StateSnapshot, TopologyMismatchIsFatal)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    std::istringstream unknown_machine("machine,node,temperature_c\n"
                                       "ghost,cpu,50\n");
    EXPECT_EXIT(solver.loadState(unknown_machine),
                testing::ExitedWithCode(1), "unknown machine");
    std::istringstream unknown_node("machine,node,temperature_c\n"
                                    "m1,gpu,50\n");
    EXPECT_EXIT(solver.loadState(unknown_node),
                testing::ExitedWithCode(1), "unknown node");
    std::istringstream empty("machine,node,temperature_c\n");
    EXPECT_EXIT(solver.loadState(empty), testing::ExitedWithCode(1),
                "no temperatures");
}

TEST(Latency, SingleRequestLatencyIsItsServiceTime)
{
    sim::Simulator simulator;
    cluster::ServerMachine server(simulator, "s1");
    cluster::Request request;
    request.id = 1;
    request.arrivalTime = 0.0;
    request.cpuSeconds = 0.025;
    server.offer(request);
    simulator.runToCompletion();
    EXPECT_EQ(server.latencyStats().count(), 1u);
    EXPECT_NEAR(server.latencyStats().mean(), 0.025, 1e-9);
}

TEST(Latency, QueueingShowsUpInTheTail)
{
    sim::Simulator simulator;
    cluster::ServerConfig config;
    config.maxQueueSeconds = 1e9;
    cluster::ServerMachine server(simulator, "s1", config);
    // Ten back-to-back 100 ms requests: the last waits 900 ms.
    for (int i = 0; i < 10; ++i) {
        cluster::Request request;
        request.id = static_cast<uint64_t>(i);
        request.arrivalTime = 0.0;
        request.cpuSeconds = 0.1;
        server.offer(request);
    }
    simulator.runToCompletion();
    EXPECT_NEAR(server.latencyStats().mean(), 0.55, 1e-5);
    EXPECT_NEAR(server.latencyStats().max(), 1.0, 1e-5);
    EXPECT_NEAR(server.latencyHistogram().quantile(0.95), 1.0, 0.05);
}

TEST(Latency, BalancerAggregatesAcrossServers)
{
    sim::Simulator simulator;
    cluster::ServerMachine a(simulator, "a");
    cluster::ServerMachine b(simulator, "b");
    lb::LoadBalancer balancer;
    balancer.addServer(&a);
    balancer.addServer(&b);
    for (int i = 0; i < 20; ++i) {
        cluster::Request request;
        request.id = static_cast<uint64_t>(i);
        request.arrivalTime = simulator.nowSeconds();
        request.cpuSeconds = 0.01;
        balancer.submit(request);
    }
    simulator.runToCompletion();
    EXPECT_EQ(balancer.latencyStats().count(), 20u);
    EXPECT_GT(balancer.latencyStats().mean(), 0.0);
}

TEST(Latency, TraditionalPolicyInflatesTailLatency)
{
    freon::ExperimentConfig config;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();

    config.policy = freon::PolicyKind::FreonBase;
    freon::ExperimentResult freon_result = freon::runExperiment(config);
    config.policy = freon::PolicyKind::Traditional;
    freon::ExperimentResult traditional = freon::runExperiment(config);

    // With two servers gone, the survivors queue deeply: the p99
    // latency balloons versus Freon's, on top of the outright drops.
    EXPECT_GT(traditional.p99Latency, 4.0 * freon_result.p99Latency);
    EXPECT_LT(freon_result.p99Latency, 0.5);
}

} // namespace
} // namespace mercury
