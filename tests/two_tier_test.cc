/**
 * @file
 * Tests for the multi-tier extension: tier chaining, per-tier
 * management, and emergency isolation.
 */

#include <gtest/gtest.h>

#include "freon/experiment.hh"
#include "freon/two_tier.hh"

namespace mercury {
namespace freon {
namespace {

TwoTierConfig
baseConfig(PolicyKind policy)
{
    TwoTierConfig config;
    config.policy = policy;
    config.workload.duration = 1200.0;
    config.workload.cgiCpuSeconds = 0.005; // cheap front, heavy app
    return config;
}

TEST(TwoTier, DynamicRequestsReachTheAppTier)
{
    TwoTierConfig config = baseConfig(PolicyKind::None);
    TwoTierResult result = runTwoTierExperiment(config);

    ASSERT_GT(result.web.submitted, 1000u);
    // Roughly 30% of completed front requests spawn app sub-requests.
    double ratio = static_cast<double>(result.app.submitted) /
                   static_cast<double>(result.web.completed);
    EXPECT_NEAR(ratio, 0.30, 0.03);
    EXPECT_GT(result.app.completed, 0u);
}

TEST(TwoTier, AppTierWorksHarderPerMachineThanWebTier)
{
    // The app does 20 ms per dynamic request vs ~2.9 ms mean on the
    // web side, so with 4 web / 3 app servers the app tier is the
    // bottleneck the sizing targets at 70%.
    TwoTierConfig config = baseConfig(PolicyKind::None);
    TwoTierResult result = runTwoTierExperiment(config);
    double web_peak_util = 0.0;
    double app_peak_util = 0.0;
    for (const auto &[name, series] : result.web.cpuUtilization)
        web_peak_util = std::max(web_peak_util, series.maxValue());
    for (const auto &[name, series] : result.app.cpuUtilization)
        app_peak_util = std::max(app_peak_util, series.maxValue());
    EXPECT_GT(app_peak_util, web_peak_util);
    EXPECT_GT(app_peak_util, 0.5);
}

TEST(TwoTier, EmergencyInAppTierIsHandledLocally)
{
    TwoTierConfig config = baseConfig(PolicyKind::FreonBase);
    config.workload.duration = 2000.0;
    config.emergencies.push_back({480.0, "a1", 38.6});
    TwoTierResult result = runTwoTierExperiment(config);

    // The app tier's admd restricted its hot machine...
    EXPECT_GT(result.app.weightAdjustments, 0u);
    EXPECT_LT(result.app.peakCpuTemperature.at("a1"), 76.0);
    // ...while the web tier never needed to act and nothing dropped.
    EXPECT_EQ(result.web.weightAdjustments, 0u);
    EXPECT_EQ(result.web.dropped, 0u);
    EXPECT_EQ(result.app.dropped, 0u);
    EXPECT_EQ(result.app.serversTurnedOff, 0u);
}

TEST(TwoTier, EmergencyInWebTierDoesNotDisturbAppTier)
{
    TwoTierConfig config = baseConfig(PolicyKind::FreonBase);
    config.workload.duration = 2000.0;
    // A web machine runs cool (<30% util), so a web emergency needs a
    // hotter inlet to cross the threshold.
    config.emergencies.push_back({480.0, "w1", 55.0});
    TwoTierResult result = runTwoTierExperiment(config);

    EXPECT_GT(result.web.weightAdjustments, 0u);
    EXPECT_EQ(result.app.weightAdjustments, 0u);
    EXPECT_EQ(result.web.dropped, 0u);
}

TEST(RecurringCycles, EcBreathesWithEveryDiurnalCycle)
{
    // Three compressed "days": Freon-EC must shrink in each valley
    // and grow back for each peak.
    freon::ExperimentConfig config;
    config.policy = freon::PolicyKind::FreonEC;
    config.workload.duration = 6000.0;
    config.workload.cycleSeconds = 2000.0;

    freon::ExperimentResult result = freon::runExperiment(config);
    EXPECT_EQ(result.dropped, 0u);

    // Count the distinct grow phases: times the active count rises
    // from <= 2 to 4.
    const TimeSeries &active = result.activeServers;
    int grow_phases = 0;
    bool low = false;
    for (size_t i = 0; i < active.size(); ++i) {
        if (active.valueAt(i) <= 2.0)
            low = true;
        if (low && active.valueAt(i) >= 4.0) {
            ++grow_phases;
            low = false;
        }
    }
    EXPECT_GE(grow_phases, 2);
    EXPECT_GE(result.serversTurnedOn, 4u);
    EXPECT_GE(result.serversTurnedOff, 4u);
}

TEST(TwoTier, Deterministic)
{
    TwoTierConfig config = baseConfig(PolicyKind::FreonBase);
    TwoTierResult a = runTwoTierExperiment(config);
    TwoTierResult b = runTwoTierExperiment(config);
    EXPECT_EQ(a.web.submitted, b.web.submitted);
    EXPECT_EQ(a.app.submitted, b.app.submitted);
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
}

} // namespace
} // namespace freon
} // namespace mercury
