/**
 * @file
 * Tests for the modified-dot configuration language: lexing, parsing,
 * diagnostics, round-tripping through the writer, Graphviz export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/thermal_graph.hh"
#include "graphdot/lexer.hh"
#include "graphdot/parser.hh"
#include "graphdot/writer.hh"

namespace mercury {
namespace graphdot {
namespace {

TEST(Lexer, TokenizesAllKinds)
{
    Lexer lexer("machine m1 { a -- b [k=0.75]; c -> d; } \"quoted\" 1e-3");
    auto tokens = lexer.tokenize();
    EXPECT_TRUE(lexer.errors().empty());
    ASSERT_GE(tokens.size(), 5u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "machine");
    EXPECT_EQ(tokens.back().kind, TokenKind::EndOfFile);

    bool saw_heat = false;
    bool saw_air = false;
    bool saw_string = false;
    bool saw_number = false;
    for (const Token &token : tokens) {
        saw_heat = saw_heat || token.kind == TokenKind::HeatEdge;
        saw_air = saw_air || token.kind == TokenKind::AirEdge;
        if (token.kind == TokenKind::String) {
            saw_string = true;
            EXPECT_EQ(token.text, "quoted");
        }
        if (token.kind == TokenKind::Number && token.number == 1e-3)
            saw_number = true;
    }
    EXPECT_TRUE(saw_heat);
    EXPECT_TRUE(saw_air);
    EXPECT_TRUE(saw_string);
    EXPECT_TRUE(saw_number);
}

TEST(Lexer, CommentsAreSkipped)
{
    Lexer lexer("# hash comment\n// slashes\n/* block\ncomment */ x");
    auto tokens = lexer.tokenize();
    EXPECT_TRUE(lexer.errors().empty());
    ASSERT_EQ(tokens.size(), 2u); // 'x' + EOF
    EXPECT_EQ(tokens[0].text, "x");
}

TEST(Lexer, TracksLineNumbers)
{
    Lexer lexer("a\nb\n  c");
    auto tokens = lexer.tokenize();
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[1].line, 2);
    EXPECT_EQ(tokens[2].line, 3);
    EXPECT_EQ(tokens[2].column, 3);
}

TEST(Lexer, ReportsUnterminatedString)
{
    Lexer lexer("\"oops");
    lexer.tokenize();
    ASSERT_FALSE(lexer.errors().empty());
    EXPECT_NE(lexer.errors()[0].find("unterminated"), std::string::npos);
}

TEST(Lexer, NegativeNumbers)
{
    Lexer lexer("-3.5 --");
    auto tokens = lexer.tokenize();
    EXPECT_TRUE(lexer.errors().empty());
    EXPECT_EQ(tokens[0].kind, TokenKind::Number);
    EXPECT_DOUBLE_EQ(tokens[0].number, -3.5);
    EXPECT_EQ(tokens[1].kind, TokenKind::HeatEdge);
}

const char *kTinyConfig = R"(
machine box {
    inlet_temperature = 20;
    fan_cfm = 15;
    initial_temperature = 20;

    node comp [kind=component, mass=0.2, c=500, pmin=5, pmax=25];
    node inlet [kind=inlet];
    node air [kind=air];
    node exhaust [kind=exhaust];

    comp -- air [k=1.5];
    inlet -> air [fraction=1];
    air -> exhaust [fraction=1];
}
)";

TEST(Parser, ParsesMinimalMachine)
{
    ParseResult result = parseConfig(kTinyConfig);
    ASSERT_TRUE(result.ok()) << result.errors.front();
    ASSERT_EQ(result.config.machines.size(), 1u);
    const core::MachineSpec &spec = result.config.machines[0];
    EXPECT_EQ(spec.name, "box");
    EXPECT_DOUBLE_EQ(spec.fanCfm, 15.0);
    EXPECT_EQ(spec.nodes.size(), 4u);
    const core::NodeSpec *comp = spec.findNode("comp");
    ASSERT_NE(comp, nullptr);
    EXPECT_TRUE(comp->hasPower);
    EXPECT_DOUBLE_EQ(comp->maxPower, 25.0);
    ASSERT_EQ(spec.heatEdges.size(), 1u);
    EXPECT_DOUBLE_EQ(spec.heatEdges[0].k, 1.5);
    ASSERT_EQ(spec.airEdges.size(), 2u);
}

TEST(Parser, ParsesRoomWithMachines)
{
    std::string source = std::string(kTinyConfig) + R"(
cluster lab {
    source ac [temperature=17.5];
    sink out;
    machine n1 uses box;
    machine n2 uses box;
    ac -> n1 [fraction=0.5];
    ac -> n2 [fraction=0.5];
    n1 -> out [fraction=1];
    n2 -> out [fraction=1];
}
)";
    ParseResult result = parseConfig(source);
    ASSERT_TRUE(result.ok()) << result.errors.front();
    ASSERT_TRUE(result.config.room.has_value());
    const core::RoomSpec &room = *result.config.room;
    EXPECT_EQ(room.name, "lab");
    EXPECT_EQ(room.nodes.size(), 4u);
    EXPECT_EQ(room.edges.size(), 4u);
    const core::RoomNodeSpec *ac = room.findNode("ac");
    ASSERT_NE(ac, nullptr);
    EXPECT_DOUBLE_EQ(ac->temperature, 17.5);
    const core::RoomNodeSpec *n2 = room.findNode("n2");
    ASSERT_NE(n2, nullptr);
    EXPECT_EQ(n2->machine, "box");
}

TEST(Parser, ReportsUnknownAttribute)
{
    ParseResult result = parseConfig(
        "machine m { node inlet [kind=inlet, bogus=3]; }");
    ASSERT_FALSE(result.ok());
    bool found = false;
    for (const std::string &err : result.errors)
        found = found || err.find("bogus") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Parser, ReportsMissingSemicolonWithLocation)
{
    ParseResult result = parseConfig(
        "machine m {\n    node inlet [kind=inlet]\n}");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].find("line 3"), std::string::npos);
}

TEST(Parser, SemanticValidationRuns)
{
    // Parses fine but the air fractions do not sum to 1.
    ParseResult result = parseConfig(R"(
machine m {
    node inlet [kind=inlet];
    node air [kind=air];
    node exhaust [kind=exhaust];
    inlet -> air [fraction=0.5];
    air -> exhaust [fraction=1];
}
)");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].find("summing"), std::string::npos);
}

TEST(Parser, RecoversAndReportsMultipleErrors)
{
    ParseResult result = parseConfig(
        "machine m { node a [kind=component]; node b [bogus=1]; }");
    // mass/c missing for both components plus the unknown attribute:
    // all problems must surface, not just the first.
    EXPECT_GE(result.errors.size(), 2u);
}

TEST(Writer, RoundTripsTable1Server)
{
    core::ConfigSpec config;
    config.machines.push_back(core::table1Server("server"));
    config.room = core::table1Room({"server"}, 18.0);
    // table1Room names its machine node after the machine itself.
    std::string text = toText(config);

    ParseResult result = parseConfig(text);
    ASSERT_TRUE(result.ok()) << result.errors.front();
    ASSERT_EQ(result.config.machines.size(), 1u);
    const core::MachineSpec &reparsed = result.config.machines[0];
    const core::MachineSpec original = core::table1Server("server");

    EXPECT_EQ(reparsed.nodes.size(), original.nodes.size());
    EXPECT_EQ(reparsed.heatEdges.size(), original.heatEdges.size());
    EXPECT_EQ(reparsed.airEdges.size(), original.airEdges.size());
    for (const core::NodeSpec &node : original.nodes) {
        const core::NodeSpec *copy = reparsed.findNode(node.name);
        ASSERT_NE(copy, nullptr) << node.name;
        EXPECT_EQ(copy->kind, node.kind);
        EXPECT_DOUBLE_EQ(copy->mass, node.mass);
        EXPECT_DOUBLE_EQ(copy->specificHeat, node.specificHeat);
        EXPECT_EQ(copy->hasPower, node.hasPower);
        EXPECT_DOUBLE_EQ(copy->minPower, node.minPower);
        EXPECT_DOUBLE_EQ(copy->maxPower, node.maxPower);
    }
    ASSERT_TRUE(result.config.room.has_value());
    EXPECT_EQ(result.config.room->nodes.size(), 3u);
}

TEST(Writer, QuotesNamesWithSpaces)
{
    core::MachineSpec spec = core::table1Server("my server");
    std::ostringstream out;
    writeMachine(out, spec);
    EXPECT_NE(out.str().find("machine \"my server\""), std::string::npos);
}

TEST(Parser, StagnantAirWithExplicitMass)
{
    // A fanless (passively cooled) box: the air region carries its
    // own thermal mass, specified in the config language.
    ParseResult result = parseConfig(R"(
machine fanless {
    fan_cfm = 0;
    node comp [kind=component, mass=0.2, c=500, pmin=3, pmax=3];
    node inlet [kind=inlet];
    node air [kind=air, mass=0.02, c=1006];
    node exhaust [kind=exhaust];
    comp -- air [k=1];
    inlet -> air [fraction=1];
    air -> exhaust [fraction=1];
}
)");
    ASSERT_TRUE(result.ok()) << result.errors.front();
    const core::NodeSpec *air = result.config.machines[0].findNode("air");
    ASSERT_NE(air, nullptr);
    EXPECT_DOUBLE_EQ(air->mass, 0.02);
    EXPECT_DOUBLE_EQ(air->specificHeat, 1006.0);

    // The sealed box heats monotonically with the specified capacity.
    core::ThermalGraph graph(result.config.machines[0]);
    graph.step(100.0);
    double early = graph.temperature("air");
    graph.step(900.0);
    EXPECT_GT(graph.temperature("air"), early);
}

TEST(Parser, QuotedNamesAndDottedIdentifiers)
{
    ParseResult result = parseConfig(R"(
machine "rack 1 / server 2" {
    node "CPU 0" [kind=component, mass=0.1, c=800, pmin=1, pmax=2];
    node inlet [kind=inlet];
    node air.front [kind=air];
    node exhaust [kind=exhaust];
    "CPU 0" -- air.front [k=1];
    inlet -> air.front [fraction=1];
    air.front -> exhaust [fraction=1];
}
)");
    ASSERT_TRUE(result.ok()) << result.errors.front();
    EXPECT_EQ(result.config.machines[0].name, "rack 1 / server 2");
    EXPECT_NE(result.config.machines[0].findNode("CPU 0"), nullptr);
    EXPECT_NE(result.config.machines[0].findNode("air.front"), nullptr);
}

TEST(Parser, ScientificNotationAndNegativeTemperatures)
{
    ParseResult result = parseConfig(R"(
machine cold {
    inlet_temperature = -5.5;
    node comp [kind=component, mass=1.5e-1, c=8.96e2, pmin=0, pmax=3e1];
    node inlet [kind=inlet];
    node air [kind=air];
    node exhaust [kind=exhaust];
    comp -- air [k=7.5e-1];
    inlet -> air [fraction=1];
    air -> exhaust [fraction=1];
}
)");
    ASSERT_TRUE(result.ok()) << result.errors.front();
    const core::MachineSpec &spec = result.config.machines[0];
    EXPECT_DOUBLE_EQ(spec.inletTemperature, -5.5);
    EXPECT_DOUBLE_EQ(spec.findNode("comp")->mass, 0.15);
    EXPECT_DOUBLE_EQ(spec.findNode("comp")->maxPower, 30.0);
    EXPECT_DOUBLE_EQ(spec.heatEdges[0].k, 0.75);
}

TEST(Writer, GraphvizExportContainsEdges)
{
    std::ostringstream out;
    writeGraphviz(out, core::table1Server("srv"));
    std::string text = out.str();
    EXPECT_NE(text.find("digraph srv"), std::string::npos);
    EXPECT_NE(text.find("cpu -> cpu_air [dir=none"), std::string::npos);
    EXPECT_NE(text.find("label=\"0.15\""), std::string::npos);
    EXPECT_NE(text.find("[shape=box]"), std::string::npos);
}

} // namespace
} // namespace graphdot
} // namespace mercury
