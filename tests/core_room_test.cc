/**
 * @file
 * Tests for the inter-machine (room) model: AC supply driving machine
 * inlets, exhaust mixing, overrides and recirculation.
 */

#include <gtest/gtest.h>

#include "core/room.hh"
#include "core/solver.hh"
#include "core/thermal_graph.hh"

namespace mercury {
namespace core {
namespace {

/** Build a solver with N Table-1 machines under one AC. */
std::unique_ptr<Solver>
makeCluster(size_t count, double ac_temp)
{
    auto solver = std::make_unique<Solver>();
    std::vector<std::string> names;
    for (size_t i = 0; i < count; ++i) {
        std::string name = "m" + std::to_string(i + 1);
        names.push_back(name);
        solver->addMachine(table1Server(name));
    }
    solver->setRoom(table1Room(names, ac_temp));
    return solver;
}

TEST(RoomModel, AcSupplyDrivesInlets)
{
    auto solver = makeCluster(4, 18.0);
    solver->run(100.0);
    for (const std::string &name : solver->machineNames())
        EXPECT_NEAR(solver->machine(name).inletTemperature(), 18.0, 1e-9);
}

TEST(RoomModel, RaisingAcTemperatureHeatsEveryMachine)
{
    auto solver = makeCluster(2, 18.0);
    for (const std::string &name : solver->machineNames())
        solver->setUtilization(name, "cpu", 1.0);
    solver->run(30000.0);
    double before = solver->temperature("m1", "cpu");

    solver->room().setSourceTemperature("ac", 28.0);
    solver->run(30000.0);
    EXPECT_NEAR(solver->temperature("m1", "cpu"), before + 10.0, 0.1);
    EXPECT_NEAR(solver->machine("m2").inletTemperature(), 28.0, 1e-9);
}

TEST(RoomModel, InletOverrideWinsOverRoom)
{
    auto solver = makeCluster(2, 18.0);
    solver->setInletTemperature("m1", 38.6); // fiddle-style emergency
    solver->run(100.0);
    EXPECT_NEAR(solver->machine("m1").inletTemperature(), 38.6, 1e-9);
    EXPECT_NEAR(solver->machine("m2").inletTemperature(), 18.0, 1e-9);

    solver->clearInletOverride("m1");
    solver->run(100.0);
    EXPECT_NEAR(solver->machine("m1").inletTemperature(), 18.0, 1e-9);
}

TEST(RoomModel, ClusterExhaustIsMixOfMachineExhausts)
{
    auto solver = makeCluster(2, 18.0);
    solver->setUtilization("m1", "cpu", 1.0);
    solver->run(30000.0);
    double e1 = solver->machine("m1").exhaustTemperature();
    double e2 = solver->machine("m2").exhaustTemperature();
    EXPECT_GT(e1, e2); // m1 is busier
    // Equal fans -> plain average at the cluster exhaust.
    EXPECT_NEAR(solver->room().temperature("cluster_exhaust"),
                0.5 * (e1 + e2), 0.05);
}

TEST(RoomModel, RecirculationWarmsDownstreamMachine)
{
    // m2 breathes 30% of m1's exhaust: a classic hot-aisle short
    // circuit. Its inlet must settle above the AC supply temperature.
    Solver solver;
    solver.addMachine(table1Server("m1"));
    solver.addMachine(table1Server("m2"));

    RoomSpec room;
    room.name = "recirc";
    RoomNodeSpec ac;
    ac.name = "ac";
    ac.kind = RoomNodeKind::Source;
    ac.temperature = 18.0;
    room.nodes.push_back(ac);
    for (const char *name : {"m1", "m2"}) {
        RoomNodeSpec node;
        node.name = name;
        node.kind = RoomNodeKind::Machine;
        node.machine = name;
        room.nodes.push_back(node);
    }
    RoomNodeSpec sink;
    sink.name = "out";
    sink.kind = RoomNodeKind::Sink;
    room.nodes.push_back(sink);
    room.edges.push_back({"ac", "m1", 0.5});
    room.edges.push_back({"ac", "m2", 0.5});
    room.edges.push_back({"m1", "m2", 0.3});
    room.edges.push_back({"m1", "out", 0.7});
    room.edges.push_back({"m2", "out", 1.0});
    solver.setRoom(room);

    solver.setUtilization("m1", "cpu", 1.0);
    solver.run(30000.0);

    double m1_inlet = solver.machine("m1").inletTemperature();
    double m2_inlet = solver.machine("m2").inletTemperature();
    EXPECT_NEAR(m1_inlet, 18.0, 1e-9);
    EXPECT_GT(m2_inlet, 18.5); // sees recirculated hot air
    EXPECT_GT(solver.temperature("m2", "cpu"),
              solver.machine("m2").inletTemperature());
}

TEST(RoomModel, SetEdgeFractionShiftsMix)
{
    auto solver = makeCluster(2, 18.0);
    solver->setUtilization("m1", "cpu", 1.0);
    solver->run(20000.0);
    // Make the cluster exhaust see only m1's (hotter) stream by
    // shrinking m2's contribution.
    double mixed = solver->room().temperature("cluster_exhaust");
    solver->room().setEdgeFraction("m2", "cluster_exhaust", 0.01);
    solver->run(1000.0);
    EXPECT_GT(solver->room().temperature("cluster_exhaust"), mixed);
}

TEST(RoomModel, FanSpeedChangesReweightTheMixing)
{
    auto solver = makeCluster(2, 18.0);
    solver->setUtilization("m1", "cpu", 1.0);
    solver->run(30000.0);
    double e1 = solver->machine("m1").exhaustTemperature();
    double e2 = solver->machine("m2").exhaustTemperature();
    ASSERT_GT(e1, e2 + 0.5);
    double even = solver->room().temperature("cluster_exhaust");
    EXPECT_NEAR(even, 0.5 * (e1 + e2), 0.05);

    // Triple m2's fan: the (cooler) m2 stream dominates the mix, and
    // the room must pick the new flow up on the next step.
    solver->machine("m2").setFanCfm(3.0 * 38.6);
    solver->run(5000.0);
    double e1_after = solver->machine("m1").exhaustTemperature();
    double e2_after = solver->machine("m2").exhaustTemperature();
    double expected = (e1_after + 3.0 * e2_after) / 4.0;
    EXPECT_NEAR(solver->room().temperature("cluster_exhaust"), expected,
                0.05);
}

TEST(RoomModel, NodeNamesListed)
{
    auto solver = makeCluster(3, 18.0);
    auto names = solver->room().nodeNames();
    EXPECT_EQ(names.size(), 5u); // ac + sink + 3 machines
}

} // namespace
} // namespace core
} // namespace mercury
