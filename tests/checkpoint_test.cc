/**
 * @file
 * Crash-consistent checkpointing: codec round trips, paranoid decode
 * of corrupt/truncated files, fault-injected atomic writes, topology
 * guards, manager policy, and bitwise-identical trace resume.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/solver.hh"
#include "core/trace.hh"
#include "fiddle/command.hh"
#include "state/checkpoint.hh"

namespace mercury {
namespace {

std::string
tempPath(const std::string &tag)
{
    return "/tmp/mercury_checkpoint_test." + tag + "." +
           std::to_string(::getpid());
}

/** A cluster solver with plenty of mutable state to snapshot. */
void
buildClusterSolver(core::Solver &solver)
{
    std::vector<std::string> names = {"m1", "m2", "m3"};
    for (const std::string &name : names)
        solver.addMachine(core::table1Server(name));
    solver.setRoom(core::table1Room(names, 21.6));
}

/** Mutate everything a long fiddle-heavy run would have touched. */
void
perturbSolver(core::Solver &solver)
{
    solver.setUtilization("m1", "cpu", 0.83);
    solver.setUtilization("m2", "cpu", 0.41);
    solver.setUtilization("m1", "disk_platters", 0.27);
    solver.run(500.0);

    core::ThermalGraph &m1 = solver.machine("m1");
    m1.setFanCfm(m1.fanCfm() * 1.5);
    m1.setHeatK(0, m1.heatEdge(0).k * 1.2);
    m1.pinTemperature("disk_shell", 44.0);
    fiddle::FiddleResult emergency =
        fiddle::applyLine(solver, "fiddle m2 temperature inlet 33.5");
    ASSERT_TRUE(emergency.ok) << emergency.message;
    solver.run(250.0);
}

void
expectSolversBitwiseEqual(core::Solver &a, core::Solver &b)
{
    ASSERT_EQ(a.iterations(), b.iterations());
    for (const std::string &name : a.machineNames()) {
        core::ThermalGraph &ga = a.machine(name);
        core::ThermalGraph &gb = b.machine(name);
        for (const std::string &node : ga.nodeNames()) {
            EXPECT_EQ(ga.temperature(node), gb.temperature(node))
                << name << "." << node;
        }
        EXPECT_EQ(ga.fanCfm(), gb.fanCfm()) << name;
        EXPECT_EQ(ga.energyConsumed(), gb.energyConsumed()) << name;
    }
}

TEST(CheckpointCodec, RoundTripPreservesEveryField)
{
    core::Solver solver;
    buildClusterSolver(solver);
    perturbSolver(solver);

    state::Checkpoint checkpoint = state::captureSolver(solver);
    checkpoint.saveCount = 7;
    checkpoint.senders.push_back(
        {"m1", true, 900, 1000, 950, 40, 7, 3, 12});

    std::vector<uint8_t> bytes = state::encodeCheckpoint(checkpoint);
    state::Checkpoint decoded;
    std::string error;
    ASSERT_TRUE(state::decodeCheckpoint(bytes.data(), bytes.size(),
                                        &decoded, &error))
        << error;

    EXPECT_EQ(decoded.iterations, checkpoint.iterations);
    EXPECT_EQ(decoded.iterationSeconds, checkpoint.iterationSeconds);
    EXPECT_EQ(decoded.topologyHash, checkpoint.topologyHash);
    EXPECT_EQ(decoded.saveCount, 7u);
    ASSERT_EQ(decoded.machines.size(), checkpoint.machines.size());
    for (size_t i = 0; i < decoded.machines.size(); ++i) {
        const state::MachineState &got = decoded.machines[i];
        const state::MachineState &want = checkpoint.machines[i];
        EXPECT_EQ(got.name, want.name);
        EXPECT_EQ(got.temperatures, want.temperatures);
        EXPECT_EQ(got.pinned, want.pinned);
        EXPECT_EQ(got.pinValues, want.pinValues);
        EXPECT_EQ(got.heatKs, want.heatKs);
        EXPECT_EQ(got.airFractions, want.airFractions);
        EXPECT_EQ(got.fanCfm, want.fanCfm);
        EXPECT_EQ(got.energyConsumed, want.energyConsumed);
        ASSERT_EQ(got.powered.size(), want.powered.size());
        for (size_t j = 0; j < got.powered.size(); ++j) {
            EXPECT_EQ(got.powered[j].id, want.powered[j].id);
            EXPECT_EQ(got.powered[j].utilization,
                      want.powered[j].utilization);
            EXPECT_EQ(got.powered[j].basePower,
                      want.powered[j].basePower);
            EXPECT_EQ(got.powered[j].maxPower, want.powered[j].maxPower);
        }
    }
    ASSERT_TRUE(decoded.room.has_value());
    EXPECT_EQ(decoded.room->sources, checkpoint.room->sources);
    EXPECT_EQ(decoded.room->edgeFractions,
              checkpoint.room->edgeFractions);
    EXPECT_EQ(decoded.room->inletOverrides,
              checkpoint.room->inletOverrides);
    ASSERT_EQ(decoded.senders.size(), 1u);
    EXPECT_EQ(decoded.senders[0].machine, "m1");
    EXPECT_TRUE(decoded.senders[0].started);
    EXPECT_EQ(decoded.senders[0].head, 900u);
    EXPECT_EQ(decoded.senders[0].lost, 40u);
    EXPECT_EQ(decoded.senders[0].lastBacklog, 12u);
}

TEST(CheckpointCodec, RestoreReproducesTheSolverBitwise)
{
    core::Solver original;
    buildClusterSolver(original);
    perturbSolver(original);
    state::Checkpoint checkpoint = state::captureSolver(original);

    core::Solver restored;
    buildClusterSolver(restored);
    std::string error;
    ASSERT_TRUE(state::restoreSolver(restored, checkpoint, &error))
        << error;
    expectSolversBitwiseEqual(original, restored);

    // The restored solver must also *evolve* identically: same inputs,
    // same trajectory.
    original.run(300.0);
    restored.run(300.0);
    expectSolversBitwiseEqual(original, restored);
}

TEST(CheckpointCodec, CorruptAndTruncatedFilesAreRejectedNotCrashed)
{
    core::Solver solver;
    buildClusterSolver(solver);
    perturbSolver(solver);
    std::vector<uint8_t> bytes =
        state::encodeCheckpoint(state::captureSolver(solver));

    state::Checkpoint out;
    std::string error;

    // Every truncation point of the header plus a seeded spread of
    // payload truncations.
    for (size_t size = 0; size < 64 && size < bytes.size(); ++size) {
        EXPECT_FALSE(
            state::decodeCheckpoint(bytes.data(), size, &out, &error))
            << "truncated to " << size;
        EXPECT_FALSE(error.empty());
    }
    std::mt19937 rng(20060310); // the paper's conference date
    std::uniform_int_distribution<size_t> cut(64, bytes.size() - 1);
    for (int round = 0; round < 200; ++round) {
        size_t size = cut(rng);
        EXPECT_FALSE(
            state::decodeCheckpoint(bytes.data(), size, &out, &error))
            << "truncated to " << size;
    }

    // Seeded single-byte corruption all over the file: magic, version,
    // length, CRC, payload. decode must reject (the CRC catches the
    // payload; field checks catch the header).
    std::uniform_int_distribution<size_t> at(0, bytes.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    for (int round = 0; round < 500; ++round) {
        std::vector<uint8_t> bad = bytes;
        bad[at(rng)] ^= static_cast<uint8_t>(1 << bit(rng));
        state::Checkpoint ignored;
        state::decodeCheckpoint(bad.data(), bad.size(), &ignored,
                                &error); // must not crash
    }
    std::vector<uint8_t> flipped = bytes;
    flipped[bytes.size() / 2] ^= 0xff; // payload byte: CRC must catch
    EXPECT_FALSE(state::decodeCheckpoint(flipped.data(), flipped.size(),
                                         &out, &error));

    // Garbage that was never a checkpoint.
    std::vector<uint8_t> garbage(4096);
    for (uint8_t &byte : garbage)
        byte = static_cast<uint8_t>(rng());
    EXPECT_FALSE(state::decodeCheckpoint(garbage.data(), garbage.size(),
                                         &out, &error));

    // Trailing junk after a valid payload.
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(state::decodeCheckpoint(padded.data(), padded.size(),
                                         &out, &error));
}

TEST(CheckpointCodec, VersionAndMagicMismatchAreRejected)
{
    core::Solver solver;
    buildClusterSolver(solver);
    std::vector<uint8_t> bytes =
        state::encodeCheckpoint(state::captureSolver(solver));
    state::Checkpoint out;
    std::string error;

    std::vector<uint8_t> wrong_magic = bytes;
    wrong_magic[0] ^= 0xff;
    EXPECT_FALSE(state::decodeCheckpoint(
        wrong_magic.data(), wrong_magic.size(), &out, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    std::vector<uint8_t> future = bytes;
    future[4] = 0xfe; // version field, little-endian
    EXPECT_FALSE(state::decodeCheckpoint(future.data(), future.size(),
                                         &out, &error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(CheckpointRestore, TopologyMismatchLeavesSolverUntouched)
{
    core::Solver cluster;
    buildClusterSolver(cluster);
    perturbSolver(cluster);
    state::Checkpoint checkpoint = state::captureSolver(cluster);

    core::Solver other;
    other.addMachine(core::table1Server("m1"));
    other.setUtilization("m1", "cpu", 0.5);
    other.run(100.0);
    state::Checkpoint before = state::captureSolver(other);

    std::string error;
    EXPECT_FALSE(state::restoreSolver(other, checkpoint, &error));
    EXPECT_NE(error.find("topology"), std::string::npos) << error;

    // Nothing about the rejected solver moved.
    state::Checkpoint after = state::captureSolver(other);
    EXPECT_EQ(after.iterations, before.iterations);
    ASSERT_EQ(after.machines.size(), before.machines.size());
    EXPECT_EQ(after.machines[0].temperatures,
              before.machines[0].temperatures);
}

TEST(CheckpointFile, CrashAtAnyWriteStageNeverLosesTheLastGoodFile)
{
    std::string path = tempPath("faults");
    core::Solver solver;
    buildClusterSolver(solver);
    perturbSolver(solver);

    // Seed a good checkpoint.
    std::string error;
    state::Checkpoint first = state::captureSolver(solver);
    first.saveCount = 1;
    ASSERT_TRUE(state::saveCheckpointFile(path, first, &error)) << error;

    solver.run(100.0);
    state::Checkpoint second = state::captureSolver(solver);
    second.saveCount = 2;

    for (int stage = 1; stage <= 3; ++stage) {
        state::setSaveFaultStageForTest(stage);
        EXPECT_FALSE(state::saveCheckpointFile(path, second, &error))
            << "stage " << stage;
        state::setSaveFaultStageForTest(0);

        // The previous complete checkpoint is still there, valid.
        state::Checkpoint loaded;
        ASSERT_TRUE(state::loadCheckpointFile(path, &loaded, &error))
            << "stage " << stage << ": " << error;
        EXPECT_EQ(loaded.saveCount, 1u) << "stage " << stage;
        EXPECT_EQ(loaded.iterations, first.iterations)
            << "stage " << stage;
    }

    // With the fault gone the new state lands.
    ASSERT_TRUE(state::saveCheckpointFile(path, second, &error)) << error;
    state::Checkpoint loaded;
    ASSERT_TRUE(state::loadCheckpointFile(path, &loaded, &error)) << error;
    EXPECT_EQ(loaded.saveCount, 2u);
    EXPECT_EQ(loaded.iterations, second.iterations);

    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

TEST(CheckpointFile, TruncatedAndScribbledFilesAreRejectedOnLoad)
{
    std::string path = tempPath("corrupt");
    core::Solver solver;
    buildClusterSolver(solver);
    std::string error;
    ASSERT_TRUE(state::saveCheckpointFile(
        path, state::captureSolver(solver), &error))
        << error;

    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();

    state::Checkpoint out;
    auto rewrite = [&](const std::vector<char> &content) {
        std::ofstream replace(path, std::ios::binary | std::ios::trunc);
        replace.write(content.data(),
                      static_cast<std::streamsize>(content.size()));
    };

    std::vector<char> truncated(bytes.begin(),
                                bytes.begin() + bytes.size() / 3);
    rewrite(truncated);
    EXPECT_FALSE(state::loadCheckpointFile(path, &out, &error));
    EXPECT_FALSE(error.empty());

    std::vector<char> scribbled = bytes;
    scribbled[scribbled.size() - 5] ^= 0x40;
    rewrite(scribbled);
    EXPECT_FALSE(state::loadCheckpointFile(path, &out, &error));

    rewrite({});
    EXPECT_FALSE(state::loadCheckpointFile(path, &out, &error));

    EXPECT_FALSE(
        state::loadCheckpointFile(path + ".does-not-exist", &out, &error));

    std::remove(path.c_str());
}

TEST(CheckpointManager, SavesRestoresAndCarriesTheSaveCount)
{
    std::string path = tempPath("manager");
    std::remove(path.c_str());
    {
        core::Solver solver;
    buildClusterSolver(solver);
        state::CheckpointManager manager(solver, {path, 0.0});
        EXPECT_FALSE(manager.restoreAtBoot()); // nothing to restore
        EXPECT_FALSE(manager.restored());
        EXPECT_LT(manager.lastSaveAgeSeconds(), 0.0);

        perturbSolver(solver);
        std::string error;
        ASSERT_TRUE(manager.saveNow(&error)) << error;
        ASSERT_TRUE(manager.saveNow(&error)) << error;
        EXPECT_EQ(manager.saveCount(), 2u);
        EXPECT_GE(manager.lastSaveAgeSeconds(), 0.0);
    }
    {
        core::Solver solver;
    buildClusterSolver(solver);
        state::CheckpointManager manager(solver, {path, 0.0});
        std::vector<state::SenderRecord> imported;
        manager.setSenderImporter(
            [&](const std::vector<state::SenderRecord> &records) {
                imported = records;
            });
        ASSERT_TRUE(manager.restoreAtBoot());
        EXPECT_TRUE(manager.restored());
        EXPECT_EQ(manager.lastRestoreIteration(), solver.iterations());
        EXPECT_GT(solver.iterations(), 0u);

        // saveCount continues monotonically across the restart.
        std::string error;
        ASSERT_TRUE(manager.saveNow(&error)) << error;
        EXPECT_EQ(manager.saveCount(), 3u);
    }
    std::remove(path.c_str());
}

TEST(TraceResume, InterruptedRunContinuesBitwise)
{
    core::UtilizationTrace trace;
    for (int t = 0; t <= 400; t += 10) {
        double load = 0.2 + 0.6 * (0.5 + 0.5 * std::sin(t / 60.0));
        trace.add(t, "m1", "cpu", load);
        trace.add(t, "m1", "disk_platters", load * 0.4);
    }

    // Reference: one uninterrupted run.
    core::Solver reference;
    reference.addMachine(core::table1Server("m1"));
    core::TraceRunner full(reference, trace);
    full.record("m1", "cpu");
    full.record("m1", "disk_shell");
    full.run();

    // Interrupted: run 150 s, checkpoint, "crash", restore, resume.
    std::string path = tempPath("resume");
    core::Solver before;
    before.addMachine(core::table1Server("m1"));
    core::TraceRunner head(before, trace);
    head.record("m1", "cpu");
    head.record("m1", "disk_shell");
    head.run(150.0);
    std::string error;
    ASSERT_TRUE(state::saveCheckpointFile(
        path, state::captureSolver(before), &error))
        << error;

    core::Solver after;
    after.addMachine(core::table1Server("m1"));
    state::Checkpoint checkpoint;
    ASSERT_TRUE(state::loadCheckpointFile(path, &checkpoint, &error))
        << error;
    ASSERT_TRUE(state::restoreSolver(after, checkpoint, &error)) << error;
    core::TraceRunner tail(after, trace);
    tail.record("m1", "cpu");
    tail.record("m1", "disk_shell");
    tail.run();

    // head + tail must equal the reference series *bitwise*.
    for (const char *component : {"cpu", "disk_shell"}) {
        const TimeSeries &want = full.series("m1", component);
        const TimeSeries &got_head = head.series("m1", component);
        const TimeSeries &got_tail = tail.series("m1", component);
        ASSERT_EQ(got_head.size() + got_tail.size(), want.size())
            << component;
        for (size_t i = 0; i < got_head.size(); ++i) {
            EXPECT_EQ(got_head.timeAt(i), want.timeAt(i)) << component;
            EXPECT_EQ(got_head.valueAt(i), want.valueAt(i))
                << component << " @ " << want.timeAt(i);
        }
        for (size_t i = 0; i < got_tail.size(); ++i) {
            size_t j = got_head.size() + i;
            EXPECT_EQ(got_tail.timeAt(i), want.timeAt(j)) << component;
            EXPECT_EQ(got_tail.valueAt(i), want.valueAt(j))
                << component << " @ " << want.timeAt(j);
        }
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace mercury
