/**
 * @file
 * Restart policy unit tests: backoff ladder, healthy-uptime reset,
 * crash-loop cutoff, and iteration-progress stall detection — all on
 * caller-supplied clocks, no processes involved.
 */

#include <gtest/gtest.h>

#include "state/supervisor.hh"

namespace mercury {
namespace {

state::SupervisorPolicy
testPolicy()
{
    state::SupervisorPolicy policy;
    policy.initialBackoffSeconds = 1.0;
    policy.maxBackoffSeconds = 8.0;
    policy.backoffMultiplier = 2.0;
    policy.healthyUptimeSeconds = 30.0;
    policy.crashLoopThreshold = 4;
    policy.crashLoopWindowSeconds = 60.0;
    return policy;
}

TEST(RestartTracker, BackoffDoublesUpToTheCeiling)
{
    state::RestartTracker tracker(testPolicy());
    EXPECT_DOUBLE_EQ(tracker.onExit(100.0, 5.0), 1.0);
    EXPECT_DOUBLE_EQ(tracker.onExit(200.0, 5.0), 2.0);
    EXPECT_DOUBLE_EQ(tracker.onExit(300.0, 5.0), 4.0);
    EXPECT_DOUBLE_EQ(tracker.onExit(400.0, 5.0), 8.0);
    EXPECT_DOUBLE_EQ(tracker.onExit(500.0, 5.0), 8.0); // capped
    EXPECT_EQ(tracker.restarts(), 5u);
}

TEST(RestartTracker, HealthyUptimeResetsTheLadder)
{
    state::RestartTracker tracker(testPolicy());
    EXPECT_DOUBLE_EQ(tracker.onExit(100.0, 5.0), 1.0);
    EXPECT_DOUBLE_EQ(tracker.onExit(200.0, 5.0), 2.0);
    // The child then ran for 45 s — healthy. Next crash starts over.
    EXPECT_DOUBLE_EQ(tracker.onExit(300.0, 45.0), 1.0);
    EXPECT_DOUBLE_EQ(tracker.onExit(400.0, 5.0), 2.0);
}

TEST(RestartTracker, CrashLoopTripsOnlyInsideTheWindow)
{
    state::RestartTracker tracker(testPolicy());
    // Three quick exits: under the threshold of 4.
    tracker.onExit(10.0, 1.0);
    tracker.onExit(12.0, 1.0);
    tracker.onExit(14.0, 1.0);
    EXPECT_FALSE(tracker.crashLooping(14.0));
    // Fourth inside the 60 s window: loop.
    tracker.onExit(16.0, 1.0);
    EXPECT_TRUE(tracker.crashLooping(16.0));

    // Spread the same four exits over > 60 s each: never a loop.
    state::RestartTracker spread(testPolicy());
    for (int i = 0; i < 8; ++i) {
        spread.onExit(100.0 * (i + 1), 1.0);
        EXPECT_FALSE(spread.crashLooping(100.0 * (i + 1))) << i;
    }
}

TEST(StallDetector, TripsOnlyWhenTheCounterStopsAdvancing)
{
    state::StallDetector stall(10.0);
    EXPECT_FALSE(stall.stalled(0.0)); // nothing observed yet

    stall.noteProgress(100, 0.0);
    EXPECT_FALSE(stall.stalled(5.0));
    stall.noteProgress(150, 5.0); // advancing
    EXPECT_FALSE(stall.stalled(14.0));
    stall.noteProgress(150, 9.0); // frozen counter
    stall.noteProgress(150, 14.0);
    EXPECT_FALSE(stall.stalled(14.0)); // 9 s since last advance
    EXPECT_TRUE(stall.stalled(15.1));  // 10.1 s since last advance

    // Progress clears it.
    stall.noteProgress(151, 16.0);
    EXPECT_FALSE(stall.stalled(20.0));

    // reset() forgets history (fresh child).
    stall.noteProgress(151, 100.0);
    stall.reset();
    EXPECT_FALSE(stall.stalled(1000.0));
}

} // namespace
} // namespace mercury
