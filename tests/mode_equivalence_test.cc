/**
 * @file
 * Mercury's two operating modes must agree: the *online* path (the
 * cluster simulation shipping monitord updates through the message
 * layer into a live solver every second) and the *offline* path (the
 * same per-second utilizations replayed from a trace file through
 * TraceRunner) are required by the paper's design to produce the same
 * temperatures — offline runs exist precisely so parameters can be
 * tuned "without actually running the system software".
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/server_machine.hh"
#include "cluster/thermal_bridge.hh"
#include "core/solver.hh"
#include "core/trace.hh"
#include "lb/load_balancer.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace mercury {
namespace {

TEST(ModeEquivalence, OnlineAndOfflineTemperaturesMatch)
{
    // --- Online: DES cluster + bridge + live solver. ---
    sim::Simulator simulator;
    core::Solver online;
    online.addMachine(core::table1Server("m1"));
    online.addMachine(core::table1Server("m2"));
    cluster::ThermalBridge bridge(simulator, online);
    std::vector<std::unique_ptr<cluster::ServerMachine>> machines;
    lb::LoadBalancer balancer;
    for (const char *name : {"m1", "m2"}) {
        machines.push_back(std::make_unique<cluster::ServerMachine>(
            simulator, name));
        balancer.addServer(machines.back().get());
        bridge.attach(*machines.back(), core::table1Server(name));
    }
    bridge.start();

    workload::WorkloadConfig workload_config;
    workload_config.duration = 600.0;
    workload_config.peakRate = 120.0;
    workload_config.peakTime = 300.0;
    workload_config.peakPlateauSeconds = 100.0;
    workload_config.bumpWidth = 120.0;
    workload::WorkloadGenerator generator(simulator, balancer,
                                          workload_config);
    generator.start();

    // Record what the solver actually received, exactly when it
    // received it, and the resulting temperatures.
    core::UtilizationTrace recorded;
    TimeSeries online_cpu("online");
    simulator.every(sim::seconds(1.0), [&] {
        double now = simulator.nowSeconds();
        for (const char *name : {"m1", "m2"}) {
            // The paper's trace format: time, machine, component. The
            // utilizations here are the post-update values for this
            // iteration, logged at the *previous* boundary so replay
            // applies them before the same step.
            recorded.add(now - 1.0, name,
                         "cpu", online.machine(name).utilization("cpu"));
            recorded.add(now - 1.0, name, "disk",
                         online.machine(name).utilization(
                             "disk_platters"));
        }
        online_cpu.add(now, online.temperature("m1", "cpu"));
        return true;
    });
    simulator.runUntil(sim::seconds(600.0));

    // --- Offline: round-trip the trace through its file format and
    // replay it into a fresh solver. ---
    std::ostringstream file;
    recorded.save(file);
    std::istringstream in(file.str());
    core::UtilizationTrace replay = core::UtilizationTrace::load(in);

    core::Solver offline;
    offline.addMachine(core::table1Server("m1"));
    offline.addMachine(core::table1Server("m2"));
    core::TraceRunner runner(offline, replay);
    runner.record("m1", "cpu");
    runner.run(600.0);

    // The recording clock and the bridge's iteration interleave at
    // the same boundaries, so the two modes agree essentially exactly.
    double worst = runner.series("m1", "cpu").maxAbsError(online_cpu);
    EXPECT_LT(worst, 0.02);
    EXPECT_GT(online_cpu.maxValue(), 30.0); // the run did something
}

} // namespace
} // namespace mercury
