/**
 * @file
 * Tests for the diurnal Web workload generator.
 */

#include <gtest/gtest.h>

#include <memory>

#include "lb/load_balancer.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace mercury {
namespace workload {
namespace {

TEST(PeakRate, MatchesPaperSizing)
{
    // 30% CGI at 25 ms + 70% static at 2 ms -> mean 8.9 ms of CPU.
    // 70% utilization across 4 single-CPU servers needs ~315 req/s.
    WorkloadConfig config;
    double rate = peakRateForUtilization(0.70, 4, config);
    EXPECT_NEAR(rate, 0.70 * 4 / 0.0089, 1e-6);
    EXPECT_NEAR(rate, 314.6, 0.5);
}

TEST(RateShape, ValleyPeakValley)
{
    sim::Simulator simulator;
    lb::LoadBalancer balancer;
    WorkloadConfig config;
    WorkloadGenerator generator(simulator, balancer, config);
    EXPECT_LT(generator.rateAt(0.0), 0.2 * config.peakRate);
    EXPECT_NEAR(generator.rateAt(config.peakTime), config.peakRate, 1e-9);
    EXPECT_LT(generator.rateAt(config.duration),
              generator.rateAt(config.peakTime));
    EXPECT_GE(generator.rateAt(0.0), config.valleyRate);
}

struct Rig
{
    sim::Simulator simulator;
    std::vector<std::unique_ptr<cluster::ServerMachine>> machines;
    lb::LoadBalancer balancer;

    explicit Rig(int servers)
    {
        for (int i = 0; i < servers; ++i) {
            machines.push_back(std::make_unique<cluster::ServerMachine>(
                simulator, "m" + std::to_string(i + 1)));
            balancer.addServer(machines.back().get());
        }
    }
};

TEST(Generator, ProducesRoughlyTheExpectedVolume)
{
    Rig rig(4);
    WorkloadConfig config;
    config.duration = 2000.0;
    WorkloadGenerator generator(rig.simulator, rig.balancer, config);
    generator.start();
    rig.simulator.runToCompletion();

    // Integral of the rate curve: valley*T + (peak-valley)*width*sqrt(2pi)
    // truncated to the window; ~25*2000 + 290*450*2.5066*0.95 ~ 3.6e5/awk.
    double expected = 0.0;
    for (double t = 0.5; t < config.duration; t += 1.0)
        expected += generator.rateAt(t);
    double actual = static_cast<double>(generator.generated());
    EXPECT_NEAR(actual, expected, 0.05 * expected);
    EXPECT_EQ(rig.balancer.submitted(), generator.generated());
}

TEST(Generator, DeterministicForSameSeed)
{
    uint64_t counts[2];
    uint64_t served[2];
    for (int run = 0; run < 2; ++run) {
        Rig rig(2);
        WorkloadConfig config;
        config.duration = 300.0;
        config.seed = 7;
        WorkloadGenerator generator(rig.simulator, rig.balancer, config);
        generator.start();
        rig.simulator.runToCompletion();
        counts[run] = generator.generated();
        served[run] = rig.balancer.completed();
    }
    EXPECT_EQ(counts[0], counts[1]);
    EXPECT_EQ(served[0], served[1]);
}

TEST(Generator, PeakLoadsFourServersToSeventyPercent)
{
    Rig rig(4);
    WorkloadConfig config;
    config.duration = 1400.0; // run through the peak
    config.peakRate = peakRateForUtilization(0.70, 4, config);
    WorkloadGenerator generator(rig.simulator, rig.balancer, config);
    generator.start();

    // Sample utilization over the minute around the peak.
    rig.simulator.runUntil(sim::seconds(config.peakTime - 30.0));
    for (auto &machine : rig.machines)
        machine->sampleUtilization();
    rig.simulator.runUntil(sim::seconds(config.peakTime + 30.0));
    double total = 0.0;
    for (auto &machine : rig.machines)
        total += machine->sampleUtilization().cpu;
    EXPECT_NEAR(total / 4.0, 0.70, 0.06);
}

TEST(Generator, MixContainsBothKinds)
{
    Rig rig(4);
    WorkloadConfig config;
    config.duration = 200.0;
    uint64_t dynamic = 0;
    uint64_t total = 0;
    // Wrap the balancer with a counting spy via server completion.
    for (auto &machine : rig.machines) {
        machine->setCompletionFn([&](const cluster::ServerMachine &,
                                     const cluster::Request &request,
                                     cluster::RequestOutcome) {
            ++total;
            if (request.dynamic)
                ++dynamic;
        });
    }
    WorkloadGenerator generator(rig.simulator, rig.balancer, config);
    generator.start();
    rig.simulator.runToCompletion();
    ASSERT_GT(total, 1000u);
    double fraction = static_cast<double>(dynamic) /
                      static_cast<double>(total);
    EXPECT_NEAR(fraction, 0.30, 0.04);
}

TEST(Generator, ValleyAbovePeakPanics)
{
    sim::Simulator simulator;
    lb::LoadBalancer balancer;
    WorkloadConfig config;
    config.valleyRate = 1000.0;
    config.peakRate = 100.0;
    EXPECT_DEATH(WorkloadGenerator(simulator, balancer, config),
                 "exceeds peak");
}

TEST(Generator, RecurringCyclesRepeatTheBump)
{
    sim::Simulator simulator;
    lb::LoadBalancer balancer;
    WorkloadConfig config;
    config.duration = 6000.0;
    config.cycleSeconds = 2000.0;
    WorkloadGenerator generator(simulator, balancer, config);
    // Identical phase in every cycle.
    EXPECT_DOUBLE_EQ(generator.rateAt(300.0), generator.rateAt(2300.0));
    EXPECT_DOUBLE_EQ(generator.rateAt(config.peakTime),
                     generator.rateAt(config.peakTime + 4000.0));
    // Valleys between the peaks.
    EXPECT_LT(generator.rateAt(2000.0), 0.2 * config.peakRate);
}

TEST(Generator, NoArrivalsAfterDuration)
{
    Rig rig(1);
    WorkloadConfig config;
    config.duration = 100.0;
    WorkloadGenerator generator(rig.simulator, rig.balancer, config);
    generator.start();
    rig.simulator.runToCompletion();
    EXPECT_LE(rig.simulator.nowSeconds(), 100.0 + 10.0);
}

} // namespace
} // namespace workload
} // namespace mercury
