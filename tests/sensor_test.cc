/**
 * @file
 * End-to-end tests for the sensor path: SolverService dispatch, the
 * typed SensorClient, the paper's C-style API (Figure 3), and a real
 * UDP round trip against a background SolverDaemon.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "core/solver.hh"
#include "proto/solver_daemon.hh"
#include "proto/solver_service.hh"
#include "sensor/client.hh"
#include "sensor/sensor_api.hh"
#include "sensor/transport.hh"

namespace mercury {
namespace {

class SensorFixture : public ::testing::Test
{
  protected:
    SensorFixture()
        : service_(solver_)
    {
        solver_.addMachine(core::table1Server("machine1"));
        solver_.setUtilization("machine1", "cpu", 1.0);
        solver_.run(5000.0);
    }

    core::Solver solver_;
    proto::SolverService service_;
};

TEST_F(SensorFixture, ServiceAppliesUtilizationUpdates)
{
    proto::UtilizationUpdate update;
    update.machine = "machine1";
    update.component = "disk"; // alias
    update.utilization = 0.6;
    auto packet = proto::encode(update);
    auto reply = service_.handlePacket(packet.data(), packet.size());
    EXPECT_FALSE(reply.has_value()); // one-way
    EXPECT_EQ(service_.updatesApplied(), 1u);
    EXPECT_DOUBLE_EQ(
        solver_.machine("machine1").utilization("disk_platters"), 0.6);
}

TEST_F(SensorFixture, ServiceRejectsUnknownTargets)
{
    proto::UtilizationUpdate update;
    update.machine = "nope";
    update.component = "cpu";
    update.utilization = 0.5;
    auto packet = proto::encode(update);
    service_.handlePacket(packet.data(), packet.size());
    EXPECT_EQ(service_.updatesRejected(), 1u);

    update.machine = "machine1";
    update.component = "cpu_air"; // unpowered node
    packet = proto::encode(update);
    service_.handlePacket(packet.data(), packet.size());
    EXPECT_EQ(service_.updatesRejected(), 2u);
}

TEST_F(SensorFixture, ServiceAnswersSensorRequests)
{
    proto::SensorRequest request{1, "machine1", "cpu"};
    auto packet = proto::encode(request);
    auto reply_packet = service_.handlePacket(packet.data(), packet.size());
    ASSERT_TRUE(reply_packet.has_value());
    auto reply = proto::decode(*reply_packet);
    ASSERT_TRUE(reply.has_value());
    const auto &sensor_reply = std::get<proto::SensorReply>(*reply);
    EXPECT_EQ(sensor_reply.status, proto::Status::Ok);
    EXPECT_NEAR(sensor_reply.temperature,
                solver_.temperature("machine1", "cpu"), 1e-9);
    EXPECT_EQ(service_.sensorReads(), 1u);
}

TEST_F(SensorFixture, ServiceReportsUnknowns)
{
    proto::SensorRequest request{2, "ghost", "cpu"};
    auto packet = proto::encode(request);
    auto reply = proto::decode(*service_.handlePacket(packet.data(),
                                                      packet.size()));
    EXPECT_EQ(std::get<proto::SensorReply>(*reply).status,
              proto::Status::UnknownMachine);

    request = {3, "machine1", "gpu"};
    packet = proto::encode(request);
    reply = proto::decode(*service_.handlePacket(packet.data(),
                                                 packet.size()));
    EXPECT_EQ(std::get<proto::SensorReply>(*reply).status,
              proto::Status::UnknownComponent);
}

TEST_F(SensorFixture, ServiceCountsUndecodablePackets)
{
    uint8_t junk[proto::kMessageSize] = {1, 2, 3};
    EXPECT_FALSE(service_.handlePacket(junk, sizeof(junk)).has_value());
    EXPECT_EQ(service_.undecodable(), 1u);
}

TEST_F(SensorFixture, SensorClientReadsThroughLocalTransport)
{
    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service_), "machine1");
    auto temperature = client.read("cpu");
    ASSERT_TRUE(temperature.has_value());
    EXPECT_NEAR(*temperature, solver_.temperature("machine1", "cpu"), 1e-9);
    EXPECT_FALSE(client.read("gpu").has_value());
}

TEST_F(SensorFixture, SensorClientFiddleRoundTrip)
{
    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service_), "machine1");
    auto [ok, message] =
        client.fiddle("fiddle machine1 temperature inlet 35");
    EXPECT_TRUE(ok) << message;
    EXPECT_DOUBLE_EQ(solver_.machine("machine1").inletTemperature(), 35.0);

    auto [bad_ok, bad_message] = client.fiddle("machine1 bogus 1");
    EXPECT_FALSE(bad_ok);
    EXPECT_FALSE(bad_message.empty());
}

TEST_F(SensorFixture, CApiAgainstLocalService)
{
    installLocalSolver(&service_);
    int sd = opensensor_for("local", 8367, "machine1", "disk");
    ASSERT_GE(sd, 0);
    float temp = readsensor(sd);
    EXPECT_FALSE(std::isnan(temp));
    EXPECT_NEAR(temp, solver_.temperature("machine1", "disk_platters"),
                1e-3);
    closesensor(sd);
    // Reads on a closed descriptor fail cleanly.
    EXPECT_TRUE(std::isnan(readsensor(sd)));
    installLocalSolver(nullptr);
}

TEST_F(SensorFixture, CApiRejectsBadArguments)
{
    EXPECT_EQ(opensensor_for(nullptr, 8367, "m", "cpu"), -1);
    EXPECT_EQ(opensensor_for("local", 0, "m", "cpu"), -1);
    EXPECT_EQ(opensensor_for("local", 99999, "m", "cpu"), -1);
    EXPECT_TRUE(std::isnan(readsensor(123456)));
    closesensor(123456); // must not crash
}

TEST(SensorUdp, EndToEndRoundTrip)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("machine1"));
    solver.setUtilization("machine1", "cpu", 1.0);
    solver.run(5000.0);
    double expected = solver.temperature("machine1", "cpu_air");

    proto::SolverDaemon::Config config;
    config.port = 0;                 // ephemeral
    config.iterationSeconds = 0.0;   // no stepping during the test
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    {
        sensor::SensorClient client(
            std::make_unique<sensor::UdpTransport>("127.0.0.1",
                                                   daemon.port()),
            "machine1");
        auto temperature = client.read("cpu_air");
        ASSERT_TRUE(temperature.has_value());
        EXPECT_NEAR(*temperature, expected, 1e-9);

        // Fiddle over UDP too.
        auto [ok, message] =
            client.fiddle("machine1 temperature inlet 30");
        EXPECT_TRUE(ok) << message;
    }

    daemon.stop();
    server.join();
    EXPECT_DOUBLE_EQ(solver.machine("machine1").inletTemperature(), 30.0);
    EXPECT_GE(daemon.service().sensorReads(), 1u);
}

TEST(SensorUdp, PaperCApiShape)
{
    // The exact call sequence of the paper's Figure 3, against a real
    // UDP daemon (machine name passed explicitly since the test host's
    // hostname is not a configured machine).
    core::Solver solver;
    solver.addMachine(core::table1Server("machine1"));

    proto::SolverDaemon::Config config;
    config.port = 0;
    config.iterationSeconds = 0.0;
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    int sd = opensensor_for("127.0.0.1", daemon.port(), "machine1", "disk");
    ASSERT_GE(sd, 0);
    float temp = readsensor(sd);
    closesensor(sd);

    daemon.stop();
    server.join();
    EXPECT_FALSE(std::isnan(temp));
    EXPECT_NEAR(temp, 21.6, 0.5); // idle machine sits at the inlet temp
}

TEST(SensorUdp, TimeoutWhenNobodyListens)
{
    sensor::UdpTransport transport("127.0.0.1", 1, 0.05, 0);
    ASSERT_TRUE(transport.valid());
    proto::SensorRequest request{1, "m", "cpu"};
    EXPECT_FALSE(transport.roundTrip(proto::encode(request)).has_value());
}

TEST(SensorUdp, InvalidHostFailsGracefully)
{
    sensor::UdpTransport transport("no.such.host.invalid.", 8367);
    EXPECT_FALSE(transport.valid());
    EXPECT_EQ(opensensor("no.such.host.invalid.", 8367, "cpu"), -1);
}

} // namespace
} // namespace mercury
