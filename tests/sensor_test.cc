/**
 * @file
 * End-to-end tests for the sensor path: SolverService dispatch, the
 * typed SensorClient, the paper's C-style API (Figure 3), and a real
 * UDP round trip against a background SolverDaemon.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hh"
#include "proto/solver_daemon.hh"
#include "proto/solver_service.hh"
#include "sensor/client.hh"
#include "sensor/sensor_api.hh"
#include "sensor/transport.hh"
#include "telemetry/reader.hh"
#include "telemetry/writer.hh"

namespace mercury {
namespace {

class SensorFixture : public ::testing::Test
{
  protected:
    SensorFixture()
        : service_(solver_)
    {
        solver_.addMachine(core::table1Server("machine1"));
        solver_.setUtilization("machine1", "cpu", 1.0);
        solver_.run(5000.0);
    }

    core::Solver solver_;
    proto::SolverService service_;
};

TEST_F(SensorFixture, ServiceAppliesUtilizationUpdates)
{
    proto::UtilizationUpdate update;
    update.machine = "machine1";
    update.component = "disk"; // alias
    update.utilization = 0.6;
    auto packet = proto::encode(update);
    auto reply = service_.handlePacket(packet.data(), packet.size());
    EXPECT_FALSE(reply.has_value()); // one-way
    EXPECT_EQ(service_.updatesApplied(), 1u);
    EXPECT_DOUBLE_EQ(
        solver_.machine("machine1").utilization("disk_platters"), 0.6);
}

TEST_F(SensorFixture, ServiceRejectsUnknownTargets)
{
    proto::UtilizationUpdate update;
    update.machine = "nope";
    update.component = "cpu";
    update.utilization = 0.5;
    auto packet = proto::encode(update);
    service_.handlePacket(packet.data(), packet.size());
    EXPECT_EQ(service_.updatesRejected(), 1u);

    update.machine = "machine1";
    update.component = "cpu_air"; // unpowered node
    packet = proto::encode(update);
    service_.handlePacket(packet.data(), packet.size());
    EXPECT_EQ(service_.updatesRejected(), 2u);
}

TEST_F(SensorFixture, ServiceAnswersSensorRequests)
{
    proto::SensorRequest request{1, "machine1", "cpu"};
    auto packet = proto::encode(request);
    auto reply_packet = service_.handlePacket(packet.data(), packet.size());
    ASSERT_TRUE(reply_packet.has_value());
    auto reply = proto::decode(*reply_packet);
    ASSERT_TRUE(reply.has_value());
    const auto &sensor_reply = std::get<proto::SensorReply>(*reply);
    EXPECT_EQ(sensor_reply.status, proto::Status::Ok);
    EXPECT_NEAR(sensor_reply.temperature,
                solver_.temperature("machine1", "cpu"), 1e-9);
    EXPECT_EQ(service_.sensorReads(), 1u);
}

TEST_F(SensorFixture, ServiceReportsUnknowns)
{
    proto::SensorRequest request{2, "ghost", "cpu"};
    auto packet = proto::encode(request);
    auto reply = proto::decode(*service_.handlePacket(packet.data(),
                                                      packet.size()));
    EXPECT_EQ(std::get<proto::SensorReply>(*reply).status,
              proto::Status::UnknownMachine);

    request = {3, "machine1", "gpu"};
    packet = proto::encode(request);
    reply = proto::decode(*service_.handlePacket(packet.data(),
                                                 packet.size()));
    EXPECT_EQ(std::get<proto::SensorReply>(*reply).status,
              proto::Status::UnknownComponent);
}

TEST_F(SensorFixture, ServiceCountsUndecodablePackets)
{
    uint8_t junk[proto::kMessageSize] = {1, 2, 3};
    EXPECT_FALSE(service_.handlePacket(junk, sizeof(junk)).has_value());
    EXPECT_EQ(service_.undecodable(), 1u);
}

TEST_F(SensorFixture, SensorClientReadsThroughLocalTransport)
{
    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service_), "machine1");
    auto temperature = client.read("cpu");
    ASSERT_TRUE(temperature.has_value());
    EXPECT_NEAR(*temperature, solver_.temperature("machine1", "cpu"), 1e-9);
    EXPECT_FALSE(client.read("gpu").has_value());
}

TEST_F(SensorFixture, SensorClientFiddleRoundTrip)
{
    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service_), "machine1");
    auto [ok, message] =
        client.fiddle("fiddle machine1 temperature inlet 35");
    EXPECT_TRUE(ok) << message;
    EXPECT_DOUBLE_EQ(solver_.machine("machine1").inletTemperature(), 35.0);

    auto [bad_ok, bad_message] = client.fiddle("machine1 bogus 1");
    EXPECT_FALSE(bad_ok);
    EXPECT_FALSE(bad_message.empty());
}

TEST_F(SensorFixture, CApiAgainstLocalService)
{
    installLocalSolver(&service_);
    int sd = opensensor_for("local", 8367, "machine1", "disk");
    ASSERT_GE(sd, 0);
    float temp = readsensor(sd);
    EXPECT_FALSE(std::isnan(temp));
    EXPECT_NEAR(temp, solver_.temperature("machine1", "disk_platters"),
                1e-3);
    closesensor(sd);
    // Reads on a closed descriptor fail cleanly.
    EXPECT_TRUE(std::isnan(readsensor(sd)));
    installLocalSolver(nullptr);
}

TEST_F(SensorFixture, CApiRejectsBadArguments)
{
    EXPECT_EQ(opensensor_for(nullptr, 8367, "m", "cpu"), -1);
    EXPECT_EQ(opensensor_for("local", 0, "m", "cpu"), -1);
    EXPECT_EQ(opensensor_for("local", 99999, "m", "cpu"), -1);
    EXPECT_TRUE(std::isnan(readsensor(123456)));
    closesensor(123456); // must not crash
}

TEST_F(SensorFixture, ClientReadManyBatchesIntoOneDatagram)
{
    auto transport = std::make_unique<sensor::FaultyTransport>(
        service_, net::FaultSpec{}, net::FaultSpec{});
    const sensor::TransportStats &stats = transport->stats();
    sensor::SensorClient client(std::move(transport), "machine1");

    std::vector<std::string> components{"cpu", "disk", "cpu_air"};
    auto values = client.readMany(components);
    ASSERT_EQ(values.size(), 3u);
    for (size_t i = 0; i < components.size(); ++i) {
        ASSERT_TRUE(values[i].has_value()) << components[i];
        EXPECT_NEAR(*values[i],
                    solver_.temperature("machine1", components[i]), 1e-9)
            << components[i];
    }
    // The whole poll fit one MultiReadRequest: one datagram, total.
    EXPECT_EQ(stats.attempts, 1u);
    EXPECT_EQ(service_.multiReads(), 1u);
    EXPECT_TRUE(client.usingBatchedReads());

    // Unknown components are per-entry failures, not poll failures.
    auto mixed = client.readMany({"cpu", "gpu"});
    ASSERT_EQ(mixed.size(), 2u);
    EXPECT_TRUE(mixed[0].has_value());
    EXPECT_FALSE(mixed[1].has_value());
}

TEST_F(SensorFixture, ClientReadManyChunksLargePolls)
{
    auto transport = std::make_unique<sensor::FaultyTransport>(
        service_, net::FaultSpec{}, net::FaultSpec{});
    const sensor::TransportStats &stats = transport->stats();
    sensor::SensorClient client(std::move(transport), "machine1");

    // More components than one packet carries: expect ceil(N/12)
    // datagrams, order preserved.
    std::vector<std::string> components;
    for (int i = 0; i < 15; ++i)
        components.push_back(i % 2 == 0 ? "cpu" : "disk");
    auto values = client.readMany(components);
    ASSERT_EQ(values.size(), components.size());
    for (size_t i = 0; i < components.size(); ++i) {
        ASSERT_TRUE(values[i].has_value()) << i;
        EXPECT_NEAR(*values[i],
                    solver_.temperature("machine1", components[i]), 1e-9);
    }
    EXPECT_EQ(stats.attempts, 2u);
}

TEST_F(SensorFixture, ClientReadManyDetailedKeepsFailureCauses)
{
    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service_), "machine1");

    // One unknown component must not taint its chunk-mates, and must
    // carry the daemon's verdict rather than an anonymous failure.
    auto outcomes = client.readManyDetailed({"cpu", "gpu", "disk"});
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].status, proto::Status::Ok);
    ASSERT_TRUE(outcomes[0].value.has_value());
    EXPECT_NEAR(*outcomes[0].value,
                solver_.temperature("machine1", "cpu"), 1e-9);
    EXPECT_EQ(outcomes[1].status, proto::Status::UnknownComponent);
    EXPECT_FALSE(outcomes[1].value.has_value());
    EXPECT_FALSE(outcomes[1].noReply);
    EXPECT_EQ(outcomes[2].status, proto::Status::Ok);
    ASSERT_TRUE(outcomes[2].value.has_value());

    // A machine-level rejection stamps every component distinctly.
    sensor::SensorClient ghost(
        std::make_unique<sensor::LocalTransport>(service_), "ghost");
    auto rejected = ghost.readManyDetailed({"cpu", "disk"});
    ASSERT_EQ(rejected.size(), 2u);
    for (const auto &outcome : rejected) {
        EXPECT_FALSE(outcome.value.has_value());
        EXPECT_FALSE(outcome.noReply);
        EXPECT_EQ(outcome.status, proto::Status::UnknownMachine);
    }

    // readMany() is the same poll minus the causes.
    auto values = client.readMany({"cpu", "gpu"});
    ASSERT_EQ(values.size(), 2u);
    EXPECT_TRUE(values[0].has_value());
    EXPECT_FALSE(values[1].has_value());
}

TEST_F(SensorFixture, ClientReadDetailedSeparatesVerdictFromSilence)
{
    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service_), "machine1");
    auto ok = client.readDetailed("cpu");
    EXPECT_EQ(ok.status, proto::Status::Ok);
    EXPECT_TRUE(ok.value.has_value());
    auto unknown = client.readDetailed("gpu");
    EXPECT_EQ(unknown.status, proto::Status::UnknownComponent);
    EXPECT_FALSE(unknown.noReply);
}

TEST(SensorUdp, ReadManyDetailedMarksTimeoutsAsNoReply)
{
    sensor::SensorClient client(
        std::make_unique<sensor::UdpTransport>("127.0.0.1", 1, 0.05, 0),
        "machine1");
    auto outcomes = client.readManyDetailed({"cpu"});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].value.has_value());
    EXPECT_TRUE(outcomes[0].noReply); // a dropout, not a verdict
}

// An "old daemon": answers everything except the batched-read RPC,
// which it silently drops (unknown message type to it).
class OldDaemonTransport final : public sensor::Transport
{
  public:
    explicit OldDaemonTransport(proto::SolverService &service)
        : inner_(service)
    {
    }

    std::optional<proto::Message>
    roundTrip(const proto::Packet &request) override
    {
        auto decoded = proto::decode(request);
        if (decoded &&
            std::holds_alternative<proto::MultiReadRequest>(*decoded))
            return std::nullopt;
        return inner_.roundTrip(request);
    }

  private:
    sensor::LocalTransport inner_;
};

TEST_F(SensorFixture, ClientFallsBackWhenDaemonIgnoresBatches)
{
    sensor::SensorClient client(
        std::make_unique<OldDaemonTransport>(service_), "machine1");

    auto values = client.readMany({"cpu", "disk"});
    ASSERT_EQ(values.size(), 2u);
    EXPECT_TRUE(values[0].has_value());
    EXPECT_TRUE(values[1].has_value());
    EXPECT_FALSE(client.usingBatchedReads());
    EXPECT_EQ(service_.multiReads(), 0u);

    // The latch sticks: later polls go straight to per-sensor reads.
    auto again = client.readMany({"cpu"});
    ASSERT_TRUE(again[0].has_value());
}

class ShmSensorFixture : public SensorFixture
{
  protected:
    ShmSensorFixture()
        : shmName_("/mercury.sensortest." + std::to_string(::getpid()) +
                   "." + std::to_string(counter_++))
    {
        ::setenv("MERCURY_SHM_NAME", shmName_.c_str(), 1);
        installLocalSolver(&service_);
    }

    ~ShmSensorFixture() override
    {
        installLocalSolver(nullptr);
        ::unsetenv("MERCURY_SHM_NAME");
        telemetry::Reader::setClockForTest(nullptr);
    }

    std::string shmName_;
    static int counter_;
};

int ShmSensorFixture::counter_ = 0;

TEST_F(ShmSensorFixture, ReadsensorUsesShmWhenPresent)
{
    telemetry::Writer writer(shmName_, solver_, 1.0);
    ASSERT_TRUE(writer.valid());

    int sd = opensensor_for("local", 8367, "machine1", "cpu");
    ASSERT_GE(sd, 0);
    float temp = readsensor(sd);
    EXPECT_FALSE(std::isnan(temp));
    EXPECT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_SHM);
    EXPECT_NEAR(temp, solver_.temperature("machine1", "cpu"), 1e-3);

    // Aliases resolve through the segment's alias table too.
    int disk = opensensor_for("local", 8367, "machine1", "disk");
    ASSERT_GE(disk, 0);
    float disk_temp = readsensor(disk);
    EXPECT_EQ(sensorpath(disk), MERCURY_SENSOR_PATH_SHM);
    EXPECT_NEAR(disk_temp,
                solver_.temperature("machine1", "disk_platters"), 1e-3);

    closesensor(sd);
    closesensor(disk);
}

TEST_F(ShmSensorFixture, MissingSegmentFallsBackToTransport)
{
    // No writer: the identical call sequence degrades silently.
    int sd = opensensor_for("local", 8367, "machine1", "cpu");
    ASSERT_GE(sd, 0);
    float temp = readsensor(sd);
    EXPECT_FALSE(std::isnan(temp));
    EXPECT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_UDP);
    EXPECT_NEAR(temp, solver_.temperature("machine1", "cpu"), 1e-3);
    closesensor(sd);
}

TEST_F(ShmSensorFixture, NoShmEnvDisablesTheFastPath)
{
    telemetry::Writer writer(shmName_, solver_, 1.0);
    ::setenv("MERCURY_NO_SHM", "1", 1);
    int sd = opensensor_for("local", 8367, "machine1", "cpu");
    ::unsetenv("MERCURY_NO_SHM");
    ASSERT_GE(sd, 0);
    EXPECT_FALSE(std::isnan(readsensor(sd)));
    EXPECT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_UDP);
    closesensor(sd);
}

TEST_F(ShmSensorFixture, EveryPathAgreesOnTheTemperature)
{
    // The acceptance bar: shm, UDP-fallback and killed-writer reads
    // all report the same temperature for the same solver state.
    double expected = solver_.temperature("machine1", "cpu");

    auto writer =
        std::make_unique<telemetry::Writer>(shmName_, solver_, 1.0);
    int sd = opensensor_for("local", 8367, "machine1", "cpu");
    ASSERT_GE(sd, 0);

    float via_shm = readsensor(sd);
    ASSERT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_SHM);

    writer.reset(); // kill the writer: magic stomped, segment gone
    float via_fallback = readsensor(sd);
    ASSERT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_UDP);

    EXPECT_NEAR(via_shm, expected, 1e-6);
    EXPECT_NEAR(via_fallback, expected, 1e-6);
    EXPECT_FLOAT_EQ(via_shm, via_fallback);
    closesensor(sd);
}

TEST_F(ShmSensorFixture, StaleSegmentFallsBackThenRecovers)
{
    telemetry::Writer writer(shmName_, solver_, 1.0);
    uint64_t published = telemetry::monotonicNanos();

    // Freeze the staleness clock just after the publish.
    std::atomic<uint64_t> now{published + 1'000'000ULL};
    telemetry::Reader::setClockForTest([&now] { return now.load(); });

    int sd = opensensor_for("local", 8367, "machine1", "cpu");
    ASSERT_GE(sd, 0);
    readsensor(sd);
    ASSERT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_SHM);

    // Writer goes quiet past the threshold (4 x 1 s period): the same
    // descriptor silently degrades to the transport.
    now.store(published + 5'000'000'000ULL);
    float stale_read = readsensor(sd);
    EXPECT_FALSE(std::isnan(stale_read));
    EXPECT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_UDP);

    // A fresh publish heals it, no reopen required.
    writer.publish();
    now.store(telemetry::monotonicNanos() + 1'000'000ULL);
    readsensor(sd);
    EXPECT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_SHM);
    closesensor(sd);
}

TEST_F(ShmSensorFixture, ReadsensorsAnswersAllDescriptors)
{
    telemetry::Writer writer(shmName_, solver_, 1.0);
    int cpu = opensensor_for("local", 8367, "machine1", "cpu");
    int disk = opensensor_for("local", 8367, "machine1", "disk");
    int bogus = 999999;
    ASSERT_GE(cpu, 0);
    ASSERT_GE(disk, 0);

    int descriptors[3] = {cpu, disk, bogus};
    float temperatures[3] = {};
    EXPECT_EQ(readsensors(descriptors, temperatures, 3), 2);
    EXPECT_NEAR(temperatures[0],
                solver_.temperature("machine1", "cpu"), 1e-3);
    EXPECT_NEAR(temperatures[1],
                solver_.temperature("machine1", "disk_platters"), 1e-3);
    EXPECT_TRUE(std::isnan(temperatures[2]));
    EXPECT_EQ(sensorpath(cpu), MERCURY_SENSOR_PATH_SHM);

    EXPECT_EQ(readsensors(nullptr, temperatures, 1), -1);
    closesensor(cpu);
    closesensor(disk);
}

TEST_F(ShmSensorFixture, ReadsensorsBatchesTheFallback)
{
    // No shm segment: the group read collapses onto one batched
    // request per machine through the shared client.
    int cpu = opensensor_for("local", 8367, "machine1", "cpu");
    int disk = opensensor_for("local", 8367, "machine1", "disk");
    int descriptors[2] = {cpu, disk};
    float temperatures[2] = {};
    EXPECT_EQ(readsensors(descriptors, temperatures, 2), 2);
    EXPECT_EQ(sensorpath(cpu), MERCURY_SENSOR_PATH_UDP);
    EXPECT_EQ(service_.multiReads(), 1u);
    EXPECT_EQ(service_.sensorReads(), 2u); // both inside the one batch
    closesensor(cpu);
    closesensor(disk);
}

TEST_F(ShmSensorFixture, ConcurrentOpenReadCloseIsSafe)
{
    telemetry::Writer writer(shmName_, solver_, 1.0);

    // Several threads churning the C API against one registry while a
    // writer republishes: TSan's bread and butter.
    std::atomic<bool> stop{false};
    std::thread publisher([&] {
        while (!stop.load(std::memory_order_relaxed))
            writer.publish();
    });

    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&, t] {
            const char *component = t % 2 == 0 ? "cpu" : "disk";
            for (int i = 0; i < 200; ++i) {
                int sd = opensensor_for("local", 8367, "machine1",
                                        component);
                if (sd < 0) {
                    failures.fetch_add(1);
                    continue;
                }
                float temp = readsensor(sd);
                if (std::isnan(temp))
                    failures.fetch_add(1);
                int pair[1] = {sd};
                float out[1];
                if (readsensors(pair, out, 1) != 1)
                    failures.fetch_add(1);
                closesensor(sd);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    stop.store(true, std::memory_order_relaxed);
    publisher.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(SensorUdp, EndToEndRoundTrip)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("machine1"));
    solver.setUtilization("machine1", "cpu", 1.0);
    solver.run(5000.0);
    double expected = solver.temperature("machine1", "cpu_air");

    proto::SolverDaemon::Config config;
    config.port = 0;                 // ephemeral
    config.iterationSeconds = 0.0;   // no stepping during the test
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    {
        sensor::SensorClient client(
            std::make_unique<sensor::UdpTransport>("127.0.0.1",
                                                   daemon.port()),
            "machine1");
        auto temperature = client.read("cpu_air");
        ASSERT_TRUE(temperature.has_value());
        EXPECT_NEAR(*temperature, expected, 1e-9);

        // Fiddle over UDP too.
        auto [ok, message] =
            client.fiddle("machine1 temperature inlet 30");
        EXPECT_TRUE(ok) << message;
    }

    daemon.stop();
    server.join();
    EXPECT_DOUBLE_EQ(solver.machine("machine1").inletTemperature(), 30.0);
    EXPECT_GE(daemon.service().sensorReads(), 1u);
}

TEST(SensorUdp, PaperCApiShape)
{
    // The exact call sequence of the paper's Figure 3, against a real
    // UDP daemon (machine name passed explicitly since the test host's
    // hostname is not a configured machine).
    core::Solver solver;
    solver.addMachine(core::table1Server("machine1"));

    proto::SolverDaemon::Config config;
    config.port = 0;
    config.iterationSeconds = 0.0;
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    int sd = opensensor_for("127.0.0.1", daemon.port(), "machine1", "disk");
    ASSERT_GE(sd, 0);
    float temp = readsensor(sd);
    closesensor(sd);

    daemon.stop();
    server.join();
    EXPECT_FALSE(std::isnan(temp));
    EXPECT_NEAR(temp, 21.6, 0.5); // idle machine sits at the inlet temp
}

TEST(SensorUdp, TimeoutWhenNobodyListens)
{
    sensor::UdpTransport transport("127.0.0.1", 1, 0.05, 0);
    ASSERT_TRUE(transport.valid());
    proto::SensorRequest request{1, "m", "cpu"};
    EXPECT_FALSE(transport.roundTrip(proto::encode(request)).has_value());
}

TEST(SensorUdp, InvalidHostFailsGracefully)
{
    sensor::UdpTransport transport("no.such.host.invalid.", 8367);
    EXPECT_FALSE(transport.valid());
    EXPECT_EQ(opensensor("no.such.host.invalid.", 8367, "cpu"), -1);
}

} // namespace
} // namespace mercury
