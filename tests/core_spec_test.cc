/**
 * @file
 * Tests for spec validation and the built-in Table 1 configuration.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/spec.hh"

namespace mercury {
namespace core {
namespace {

bool
anyProblemContains(const std::vector<std::string> &problems,
                   const std::string &needle)
{
    return std::any_of(problems.begin(), problems.end(),
                       [&](const std::string &p) {
                           return p.find(needle) != std::string::npos;
                       });
}

TEST(Table1Server, IsValid)
{
    MachineSpec spec = table1Server("m1");
    std::vector<std::string> problems = validate(spec);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
}

TEST(Table1Server, MatchesPublishedConstants)
{
    MachineSpec spec = table1Server();
    const NodeSpec *cpu = spec.findNode("cpu");
    ASSERT_NE(cpu, nullptr);
    EXPECT_DOUBLE_EQ(cpu->mass, 0.151);
    EXPECT_DOUBLE_EQ(cpu->specificHeat, 896.0);
    EXPECT_DOUBLE_EQ(cpu->minPower, 7.0);
    EXPECT_DOUBLE_EQ(cpu->maxPower, 31.0);

    const NodeSpec *platters = spec.findNode("disk_platters");
    ASSERT_NE(platters, nullptr);
    EXPECT_DOUBLE_EQ(platters->mass, 0.336);
    EXPECT_DOUBLE_EQ(platters->minPower, 9.0);
    EXPECT_DOUBLE_EQ(platters->maxPower, 14.0);

    const NodeSpec *mobo = spec.findNode("motherboard");
    ASSERT_NE(mobo, nullptr);
    EXPECT_DOUBLE_EQ(mobo->specificHeat, 1245.0);

    EXPECT_DOUBLE_EQ(spec.inletTemperature, 21.6);
    EXPECT_DOUBLE_EQ(spec.fanCfm, 38.6);
    EXPECT_EQ(spec.nodes.size(), 14u);
    EXPECT_EQ(spec.heatEdges.size(), 6u);
    EXPECT_EQ(spec.airEdges.size(), 12u);
}

TEST(Table1Server, FindNodeMissesUnknown)
{
    MachineSpec spec = table1Server();
    EXPECT_EQ(spec.findNode("gpu"), nullptr);
}

TEST(Validate, DuplicateNodeRejected)
{
    MachineSpec spec = table1Server();
    spec.nodes.push_back(spec.nodes.front());
    EXPECT_TRUE(anyProblemContains(validate(spec), "duplicate node"));
}

TEST(Validate, UnknownHeatEdgeTargetRejected)
{
    MachineSpec spec = table1Server();
    spec.heatEdges.push_back({"cpu", "nonexistent", 1.0});
    EXPECT_TRUE(anyProblemContains(validate(spec), "unknown node"));
}

TEST(Validate, NonPositiveKRejected)
{
    MachineSpec spec = table1Server();
    spec.heatEdges[0].k = 0.0;
    EXPECT_TRUE(anyProblemContains(validate(spec), "needs k > 0"));
}

TEST(Validate, FractionSumMustBeOne)
{
    MachineSpec spec = table1Server();
    // Break the inlet's outgoing fractions (0.4 + 0.5 + 0.1 = 1).
    for (AirEdgeSpec &edge : spec.airEdges) {
        if (edge.from == "inlet" && edge.to == "void_air")
            edge.fraction = 0.3;
    }
    EXPECT_TRUE(anyProblemContains(validate(spec), "summing"));
}

TEST(Validate, AirCycleRejected)
{
    MachineSpec spec = table1Server();
    // cpu_air_down currently feeds the exhaust; redirect it backwards.
    for (AirEdgeSpec &edge : spec.airEdges) {
        if (edge.from == "cpu_air_down")
            edge.to = "cpu_air";
    }
    // Restore fraction sums: cpu_air -> cpu_air_down already 1.0.
    EXPECT_TRUE(anyProblemContains(validate(spec), "cycle"));
}

TEST(Validate, MissingInletRejected)
{
    MachineSpec spec = table1Server();
    spec.nodes.erase(std::remove_if(spec.nodes.begin(), spec.nodes.end(),
                                    [](const NodeSpec &n) {
                                        return n.kind == NodeKind::Inlet;
                                    }),
                     spec.nodes.end());
    spec.airEdges.erase(std::remove_if(spec.airEdges.begin(),
                                       spec.airEdges.end(),
                                       [](const AirEdgeSpec &e) {
                                           return e.from == "inlet";
                                       }),
                        spec.airEdges.end());
    EXPECT_TRUE(anyProblemContains(validate(spec), "exactly 1 inlet"));
}

TEST(Validate, ComponentNeedsMass)
{
    MachineSpec spec = table1Server();
    for (NodeSpec &node : spec.nodes) {
        if (node.name == "cpu")
            node.mass = 0.0;
    }
    EXPECT_TRUE(anyProblemContains(validate(spec), "needs mass > 0"));
}

TEST(Validate, AirEdgeBetweenSolidsRejected)
{
    MachineSpec spec = table1Server();
    spec.airEdges.push_back({"cpu", "motherboard", 1.0});
    EXPECT_TRUE(
        anyProblemContains(validate(spec), "must connect air vertices"));
}

TEST(Validate, ExhaustCannotHaveOutgoingAir)
{
    MachineSpec spec = table1Server();
    spec.airEdges.push_back({"exhaust", "void_air", 1.0});
    EXPECT_TRUE(anyProblemContains(validate(spec), "outgoing air flow"));
}

TEST(Table1Room, IsValidForFourMachines)
{
    ConfigSpec config;
    std::vector<std::string> names{"m1", "m2", "m3", "m4"};
    for (const std::string &name : names)
        config.machines.push_back(table1Server(name));
    RoomSpec room = table1Room(names, 18.0);
    std::vector<std::string> problems = validate(room, config);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
    // ac + sink + 4 machines, 2 edges per machine.
    EXPECT_EQ(room.nodes.size(), 6u);
    EXPECT_EQ(room.edges.size(), 8u);
}

TEST(Table1Room, UnknownMachineRejected)
{
    ConfigSpec config;
    config.machines.push_back(table1Server("m1"));
    RoomSpec room = table1Room({"m1", "ghost"});
    EXPECT_TRUE(
        anyProblemContains(validate(room, config), "unknown machine"));
}

TEST(Table1Room, FractionSumChecked)
{
    ConfigSpec config;
    config.machines.push_back(table1Server("m1"));
    RoomSpec room = table1Room({"m1"});
    room.edges[0].fraction = 0.5; // ac -> m1 should be 1.0 for 1 machine
    EXPECT_TRUE(anyProblemContains(validate(room, config), "summing"));
}

} // namespace
} // namespace core
} // namespace mercury
