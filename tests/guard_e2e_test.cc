/**
 * @file
 * End-to-end acceptance tests of the sensor trust layer: a 20-server
 * Freon cluster with faults injected into 10% of its sensor streams
 * (4 of 40). The guard must quarantine every lying stream within a
 * bounded window, keep every machine's *true* (solver-side) CPU
 * temperature under the red line via degraded-mode fail-safes, and
 * cost less than 5% throughput against a fault-free reference. The
 * same fault schedule with the guard disabled must demonstrably melt
 * a server — otherwise the test would pass vacuously.
 *
 * A separate equivalence test proves the guard is a no-op on honest
 * sensors: guard-on and guard-off runs of a clean cluster produce
 * bit-identical results.
 */

#include <gtest/gtest.h>

#include "freon/experiment.hh"

namespace mercury {
namespace freon {
namespace {

constexpr double kCpuRedline = 76.0;

/**
 * The paper's 4-server cluster with its Figure 11 emergencies, plus a
 * wider monitoring net: beyond cpu and disk, every tempd also watches
 * eight secondary thermal nodes of the emulated server (power supply,
 * motherboard, exhaust, air pockets). Their thresholds are set far
 * out of reach, so they never drive control — they are there as
 * honest witnesses the guard must keep trusting, and they bring the
 * stream population to 4 x 10 = 40 so the 4-stream fault schedule
 * below is exactly the 10% the acceptance bar asks for.
 *
 * The inlet node is deliberately NOT monitored: a fiddle emergency
 * steps it between two perfectly constant values, and a constant
 * reading the model is still converging toward is indistinguishable
 * from a stuck sensor — the one shape this guard cannot referee.
 */
ExperimentConfig
fleetConfig()
{
    ExperimentConfig config;
    config.servers = 4;
    config.policy = PolicyKind::FreonBase;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();
    for (const char *extra : {"disk_shell", "ps", "motherboard",
                              "exhaust", "cpu_air", "ps_air",
                              "disk_air", "void_air"})
        config.freon.components[extra] = {2000.0, 1000.0, 3000.0};
    return config;
}

/**
 * The default GuardConfig's 10-degree model tolerance is tuned for
 * steady plant; the paper's inlet emergencies step a healthy CPU by
 * up to ~17 C between 60 s tempd samples, so an e2e deployment must
 * widen the band or it quarantines truthful sensors. Fault magnitudes
 * below are sized well past 25 so detection stays prompt.
 */
guard::GuardConfig
fleetGuard()
{
    guard::GuardConfig g;
    g.modelToleranceValue = 25.0;
    return g;
}

/**
 * Faults on 4 of the 40 streams (10%), one per fault mode, all
 * starting after the guard's 5-sample model warmup (tempd period
 * 60 s). They are concentrated on m1 and m2 on purpose: the fail-safe
 * throttles a whole machine per quarantined stream, and a 4-server
 * fleet where every machine is degraded could not possibly hold the
 * 5% throughput bar — 10% of *sensors* is not 100% of *machines*.
 */
std::map<std::string, net::SensorFaultSpec>
faultSchedule()
{
    std::map<std::string, net::SensorFaultSpec> faults;

    // m1 also suffers the 38.6 C inlet emergency at 480 s: its sensor
    // freezes at the pre-emergency reading, so an unguarded tempd
    // never sees the machine heat up.
    net::SensorFaultSpec stuck;
    stuck.mode = net::SensorFaultSpec::Mode::StuckAt;
    stuck.startSeconds = 300.0;
    faults["m1.cpu"] = stuck;

    // Total dropout for 1000 s, then the sensor heals: exercises the
    // QUARANTINED -> RECOVERING -> HEALTHY path end to end.
    net::SensorFaultSpec dropout;
    dropout.mode = net::SensorFaultSpec::Mode::Dropout;
    dropout.startSeconds = 500.0;
    dropout.endSeconds = 1500.0;
    dropout.dropProbability = 1.0;
    faults["m1.disk"] = dropout;

    net::SensorFaultSpec spike;
    spike.mode = net::SensorFaultSpec::Mode::Spike;
    spike.startSeconds = 600.0;
    spike.spikeProbability = 0.5;
    spike.spikeMagnitude = 40.0;
    faults["m2.cpu"] = spike;

    // 0.15 C/s is fast enough that the model cross-check fires within
    // ~3 samples of onset — before the inflated-but-still-trusted
    // readings can cross the disk red line and power m2 off. A slower
    // drift is genuinely harder: the forgetting-factor model tracks
    // it and the divergence builds too slowly to catch in time.
    net::SensorFaultSpec drift;
    drift.mode = net::SensorFaultSpec::Mode::Drift;
    drift.startSeconds = 400.0;
    drift.driftPerSecond = 0.15;
    faults["m2.disk"] = drift;

    return faults;
}

double
peakCpu(const ExperimentResult &result)
{
    double peak = 0.0;
    for (const auto &[machine, value] : result.peakCpuTemperature)
        peak = std::max(peak, value);
    return peak;
}

TEST(GuardE2e, FaultedFleetStaysSafeAndServesTheWorkload)
{
    ExperimentConfig clean = fleetConfig();
    ExperimentResult reference = runExperiment(clean);
    ASSERT_GT(reference.completed, 0u);
    // The fault-free fleet never red-lines (sanity for what follows).
    ASSERT_LT(peakCpu(reference), kCpuRedline);

    ExperimentConfig config = fleetConfig();
    config.sensorGuard = true;
    config.guardConfig = fleetGuard();
    config.sensorFaults = faultSchedule();
    ExperimentResult result = runExperiment(config);

    // (a) Every faulted stream is condemned within a bounded window
    // of its fault onset. Stuck-at, dropout and drift are caught as
    // soon as the detection windows fill; the spike is statistical
    // (half the samples are clean) and gets a longer allowance.
    ASSERT_TRUE(result.quarantinedAtSeconds.count("m1.cpu"));
    EXPECT_LE(result.quarantinedAtSeconds.at("m1.cpu"), 900.0);
    ASSERT_TRUE(result.quarantinedAtSeconds.count("m1.disk"));
    EXPECT_LE(result.quarantinedAtSeconds.at("m1.disk"), 900.0);
    ASSERT_TRUE(result.quarantinedAtSeconds.count("m2.cpu"));
    EXPECT_LE(result.quarantinedAtSeconds.at("m2.cpu"), 1400.0);
    ASSERT_TRUE(result.quarantinedAtSeconds.count("m2.disk"));
    EXPECT_LE(result.quarantinedAtSeconds.at("m2.disk"), 1400.0);

    // No honest stream is condemned alongside them.
    for (const auto &[stream, when] : result.quarantinedAtSeconds)
        EXPECT_TRUE(config.sensorFaults.count(stream))
            << stream << " falsely quarantined at " << when << " s";

    // (b) Degraded-mode control holds every machine's true CPU
    // temperature under the red line despite the lying sensors.
    for (const auto &[machine, peak] : result.peakCpuTemperature)
        EXPECT_LT(peak, kCpuRedline) << machine;
    EXPECT_GT(result.degradedReports, 0u);
    EXPECT_GE(result.failSafeApplications, 1u);
    EXPECT_GT(result.guardSubstitutions, 0u);

    // The healed dropout stream earns its trust back before the end.
    EXPECT_GE(result.guardRecoveries, 1u);

    // No spurious power-offs: the guard absorbed every lie without
    // tripping the red-line response on a healthy machine.
    EXPECT_EQ(result.serversTurnedOff, 0u);

    // (c) Fail-safe throttling of the two degraded machines costs
    // less than 5% of the fault-free fleet's completed requests.
    EXPECT_GE(result.completed,
              static_cast<uint64_t>(0.95 * double(reference.completed)));
}

TEST(GuardE2e, SameFaultsWithoutTheGuardRedlineAServer)
{
    ExperimentConfig config = fleetConfig();
    config.sensorGuard = false;
    config.sensorFaults = faultSchedule();
    ExperimentResult result = runExperiment(config);

    // m1's sensor froze at its cool pre-emergency reading, so Freon
    // never throttles it while the 38.6 C inlet emergency and the
    // load peak drive the real CPU past the red line. This is the
    // melt the guard exists to prevent — and it proves the guarded
    // run above passes on merit, not because the faults were benign.
    EXPECT_GT(result.peakCpuTemperature.at("m1"), kCpuRedline);

    // The spiking m2 sensor crosses the red line while fully trusted,
    // so Freon powers healthy machines off and sheds their load —
    // the throughput half of the damage (criterion (c) violated too).
    EXPECT_GT(result.serversTurnedOff, 0u);
    EXPECT_GT(result.dropped, 0u);
}

/**
 * With honest sensors the guard must be invisible: every sample
 * passes, nothing is substituted, no degraded reports are emitted,
 * and the experiment's observable behavior is bit-identical to a
 * guard-free run. No emergencies here — an inlet step is a genuine
 * anomaly by design, and this test is about the quiet case.
 */
TEST(GuardE2e, GuardIsBitwiseTransparentOnCleanSensors)
{
    ExperimentConfig off;
    off.servers = 4;
    off.policy = PolicyKind::FreonBase;
    off.workload.duration = 1200.0;

    ExperimentConfig on = off;
    on.sensorGuard = true;
    on.guardConfig = fleetGuard();

    ExperimentResult a = runExperiment(off);
    ExperimentResult b = runExperiment(on);

    // The guard saw every sample and flagged none.
    EXPECT_GT(b.guardStreams.size(), 0u);
    EXPECT_EQ(b.guardAnomalies, 0u);
    EXPECT_EQ(b.guardSubstitutions, 0u);
    EXPECT_EQ(b.guardQuarantines, 0u);
    EXPECT_EQ(b.degradedReports, 0u);
    EXPECT_EQ(b.failSafeApplications, 0u);

    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.weightAdjustments, b.weightAdjustments);
    EXPECT_EQ(a.restrictionTransitions, b.restrictionTransitions);
    EXPECT_EQ(a.energyJoules, b.energyJoules); // bitwise, not approx
    for (const auto &[machine, peak] : a.peakCpuTemperature)
        EXPECT_EQ(peak, b.peakCpuTemperature.at(machine)) << machine;
}

} // namespace
} // namespace freon
} // namespace mercury
