/**
 * @file
 * Interactions between the extension mechanisms: custom power models
 * inside the thermal graph, fans + DVFS + Freon-EC running together,
 * and determinism of the fully loaded configuration.
 */

#include <gtest/gtest.h>

#include "core/fan.hh"
#include "core/power.hh"
#include "core/thermal_graph.hh"
#include "freon/experiment.hh"

namespace mercury {
namespace {

TEST(CustomPowerModel, TableModelDrivesTheGraph)
{
    core::ThermalGraph graph(core::table1Server());
    // A saturating curve: most of the power arrives by 50% load.
    graph.setPowerModel("cpu", std::make_unique<core::TablePowerModel>(
                                   std::vector<std::pair<double, double>>{
                                       {0.0, 7.0},
                                       {0.5, 27.0},
                                       {1.0, 31.0}}));
    graph.setUtilization("cpu", 0.5);
    EXPECT_DOUBLE_EQ(graph.power("cpu"), 27.0);
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    double at_half = graph.temperature("cpu");

    graph.setUtilization("cpu", 1.0);
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    double at_full = graph.temperature("cpu");
    // Saturating power -> modest extra heat between 50% and 100%.
    EXPECT_GT(at_full, at_half);
    EXPECT_LT(at_full - at_half, 0.35 * (at_half - 21.6));
}

TEST(CustomPowerModel, PerfCounterModelPluggedViaSetPowerRange)
{
    // The perf-counter path reports a low-level utilization; the
    // graph's linear model then spans exactly [Pbase, Pmax].
    auto counters = core::pentium4CounterModel(7.0, 31.0);
    core::ThermalGraph graph(core::table1Server());
    double watts = 19.0; // estimated by the event model
    graph.setUtilization("cpu", counters.lowLevelUtilization(watts));
    EXPECT_NEAR(graph.power("cpu"), watts, 1e-9);
}

TEST(CombinedExtensions, EcWithDvfsAndFansStaysSafeAndDeterministic)
{
    freon::ExperimentConfig config;
    config.policy = freon::PolicyKind::FreonEC;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();
    config.enableDvfs = true;
    config.enableVariableFans = true;
    config.fanCurve.lowTemperature = 45.0;
    config.fanCurve.highTemperature = 72.0;
    config.fanCurve.minCfm = 38.6;
    config.fanCurve.maxCfm = 80.0;

    freon::ExperimentResult a = freon::runExperiment(config);
    freon::ExperimentResult b = freon::runExperiment(config);

    // Determinism with every mechanism interacting.
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.throttleEvents, b.throttleEvents);

    // Safety: the triple-stack keeps the hottest CPU under the red
    // line with essentially no drops.
    for (const auto &[name, peak] : a.peakCpuTemperature)
        EXPECT_LT(peak, 76.0) << name;
    EXPECT_LT(a.dropRate, 0.01);
}

TEST(CombinedExtensions, FansReduceHowHardDvfsThrottles)
{
    freon::ExperimentConfig config;
    config.policy = freon::PolicyKind::None;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();
    config.enableDvfs = true;

    freon::ExperimentResult no_fans = freon::runExperiment(config);

    config.enableVariableFans = true;
    config.fanCurve.lowTemperature = 40.0;
    config.fanCurve.highTemperature = 70.0;
    config.fanCurve.minCfm = 38.6;
    config.fanCurve.maxCfm = 90.0;
    freon::ExperimentResult with_fans = freon::runExperiment(config);

    // Better airflow means the governor holds a higher frequency.
    EXPECT_GE(with_fans.cpuFrequency.at("m1").minValue(),
              no_fans.cpuFrequency.at("m1").minValue());
    EXPECT_LE(with_fans.throttleEvents, no_fans.throttleEvents);
}

} // namespace
} // namespace mercury
