/**
 * @file
 * Large-cluster emulation by trace replication: "replicating these
 * traces allows Mercury to emulate large cluster installations, even
 * when the user's real system is much smaller" (Section 1/2.3).
 */

#include <gtest/gtest.h>

#include "core/solver.hh"
#include "core/trace.hh"

namespace mercury {
namespace core {
namespace {

TEST(Scale, ThirtyTwoWayReplicationMatchesTheOriginal)
{
    // One "real" machine's trace...
    UtilizationTrace recorded;
    for (double t = 0.0; t < 600.0; t += 30.0) {
        recorded.add(t, "m1", "cpu", 0.5 + 0.4 * ((int(t) / 30) % 2));
        recorded.add(t, "m1", "disk", 0.3);
    }

    // ...replicated across a 32-machine emulated installation.
    std::vector<std::string> names;
    std::map<std::string, std::vector<std::string>> mapping;
    for (int i = 1; i <= 32; ++i)
        names.push_back("m" + std::to_string(i));
    mapping["m1"] = names;
    UtilizationTrace big = recorded.replicated(mapping);
    EXPECT_EQ(big.size(), recorded.size() * 32);

    Solver solver;
    for (const std::string &name : names)
        solver.addMachine(table1Server(name));
    solver.setRoom(table1Room(names, 21.6));

    TraceRunner runner(solver, big);
    runner.record("m1", "cpu");
    runner.record("m17", "cpu");
    runner.record("m32", "cpu");
    runner.run(600.0);

    // Identical load + identical machines -> identical temperatures.
    const TimeSeries &a = runner.series("m1", "cpu");
    const TimeSeries &b = runner.series("m17", "cpu");
    const TimeSeries &c = runner.series("m32", "cpu");
    EXPECT_LT(a.maxAbsError(b), 1e-9);
    EXPECT_LT(a.maxAbsError(c), 1e-9);
    EXPECT_GT(a.lastValue(), 30.0); // and they actually heated up
}

TEST(Scale, SixtyFourMachineRoomIteratesCorrectly)
{
    Solver solver;
    std::vector<std::string> names;
    for (int i = 1; i <= 64; ++i)
        names.push_back("n" + std::to_string(i));
    for (const std::string &name : names)
        solver.addMachine(table1Server(name));
    solver.setRoom(table1Room(names, 18.0));
    for (size_t i = 0; i < names.size(); ++i)
        solver.setUtilization(names[i], "cpu", (i % 2) ? 1.0 : 0.0);
    solver.run(2000.0);

    // All inlets still at the AC supply; busy machines hotter than
    // idle ones; the cluster exhaust sits between the two exhausts.
    double busy = solver.temperature("n2", "cpu");
    double idle = solver.temperature("n1", "cpu");
    EXPECT_GT(busy, idle + 10.0);
    double mixed = solver.room().temperature("cluster_exhaust");
    EXPECT_GT(mixed, solver.machine("n1").exhaustTemperature() - 1e-9);
    EXPECT_LT(mixed, solver.machine("n2").exhaustTemperature() + 1e-9);
}

TEST(Scale, ThousandMachineRoomQuiescesUnderSteadyLoad)
{
    // The active-set engine's reason to exist: a 1024-machine room at
    // steady load converges, freezes almost the whole fleet, and the
    // frozen machines stay physically sensible (busy hotter than
    // idle, inlets at the AC supply).
    SolverConfig config;
    config.quiescenceEpsilon = 0.25;
    Solver solver(config);
    std::vector<std::string> names;
    for (int i = 1; i <= 1024; ++i)
        names.push_back("n" + std::to_string(i));
    for (const std::string &name : names)
        solver.addMachine(table1Server(name));
    solver.setRoom(table1Room(names, 18.0));
    for (size_t i = 0; i < names.size(); ++i)
        solver.setUtilization(names[i], "cpu", (i % 2) ? 1.0 : 0.0);

    solver.run(2000.0);
    EXPECT_EQ(solver.activeMachineCount() + solver.frozenMachineCount(),
              names.size());
    // Steady load for 2000 emulated seconds: the fleet has converged
    // and the active set collapsed to (at most) the refresh churn.
    EXPECT_GT(solver.frozenMachineCount(), names.size() * 3 / 4);

    double busy = solver.temperature("n2", "cpu");
    double idle = solver.temperature("n1", "cpu");
    EXPECT_GT(busy, idle + 10.0);

    // A load change on one machine re-activates exactly that machine.
    size_t frozen_before = solver.frozenMachineCount();
    ASSERT_TRUE(solver.isFrozen("n3"));
    solver.setUtilization("n3", "cpu", 1.0);
    solver.iterate();
    EXPECT_FALSE(solver.isFrozen("n3"));
    EXPECT_GE(solver.frozenMachineCount() + 1, frozen_before);
}

} // namespace
} // namespace core
} // namespace mercury
