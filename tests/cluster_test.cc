/**
 * @file
 * Tests for the server-machine model: queues, utilization accounting,
 * drops, the power state machine, and the thermal bridge into Mercury.
 */

#include <gtest/gtest.h>

#include "cluster/server_machine.hh"
#include "cluster/thermal_bridge.hh"
#include "core/solver.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace cluster {
namespace {

Request
makeRequest(uint64_t id, double cpu_s, double disk_s = 0.0)
{
    Request request;
    request.id = id;
    request.cpuSeconds = cpu_s;
    request.diskSeconds = disk_s;
    return request;
}

TEST(ServerMachine, ServesARequestToCompletion)
{
    sim::Simulator simulator;
    ServerMachine server(simulator, "s1");
    std::vector<RequestOutcome> outcomes;
    server.setCompletionFn([&](const ServerMachine &, const Request &,
                               RequestOutcome outcome) {
        outcomes.push_back(outcome);
    });

    EXPECT_TRUE(server.offer(makeRequest(1, 0.025)));
    EXPECT_EQ(server.activeConnections(), 1);
    simulator.runToCompletion();
    EXPECT_EQ(server.activeConnections(), 0);
    EXPECT_EQ(server.served(), 1u);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], RequestOutcome::Completed);
    // 25 ms of CPU finished the request 25 ms in.
    EXPECT_EQ(simulator.now(), sim::seconds(0.025));
}

TEST(ServerMachine, CpuUtilizationIsExactBusyFraction)
{
    sim::Simulator simulator;
    ServerMachine server(simulator, "s1");
    // 10 requests x 25 ms = 250 ms of CPU in a 1 s window = 25%.
    for (int i = 0; i < 10; ++i)
        server.offer(makeRequest(i, 0.025));
    simulator.runUntil(sim::seconds(1.0));
    auto sample = server.sampleUtilization();
    EXPECT_NEAR(sample.cpu, 0.25, 1e-9);
    EXPECT_NEAR(sample.disk, 0.0, 1e-9);

    // Nothing happens in the second window.
    simulator.runUntil(sim::seconds(2.0));
    sample = server.sampleUtilization();
    EXPECT_NEAR(sample.cpu, 0.0, 1e-9);
}

TEST(ServerMachine, UtilizationSaturatesUnderOverload)
{
    sim::Simulator simulator;
    ServerMachine server(simulator, "s1");
    for (int i = 0; i < 100; ++i)
        server.offer(makeRequest(i, 0.05)); // 5 s of work
    simulator.runUntil(sim::seconds(1.0));
    auto sample = server.sampleUtilization();
    EXPECT_NEAR(sample.cpu, 1.0, 1e-9);
}

TEST(ServerMachine, DiskQueueIsSeparate)
{
    sim::Simulator simulator;
    ServerMachine server(simulator, "s1");
    for (int i = 0; i < 10; ++i)
        server.offer(makeRequest(i, 0.002, 0.006));
    simulator.runUntil(sim::seconds(1.0));
    auto sample = server.sampleUtilization();
    EXPECT_NEAR(sample.cpu, 0.02, 1e-9);
    EXPECT_NEAR(sample.disk, 0.06, 1e-9);
}

TEST(ServerMachine, DropsWhenQueueTooLong)
{
    sim::Simulator simulator;
    ServerConfig config;
    config.maxQueueSeconds = 1.0;
    ServerMachine server(simulator, "s1", config);
    int drops = 0;
    server.setCompletionFn([&](const ServerMachine &, const Request &,
                               RequestOutcome outcome) {
        if (outcome == RequestOutcome::DroppedOverload)
            ++drops;
    });
    // 30 x 0.1 s = 3 s of CPU; patience is 1 s, so later offers drop.
    int accepted = 0;
    for (int i = 0; i < 30; ++i) {
        if (server.offer(makeRequest(i, 0.1)))
            ++accepted;
    }
    EXPECT_GT(drops, 0);
    EXPECT_LE(accepted, 12);
    EXPECT_EQ(server.dropped(), static_cast<uint64_t>(drops));
}

TEST(ServerMachine, ConnectionLimitEnforced)
{
    sim::Simulator simulator;
    ServerConfig config;
    config.maxConnections = 5;
    config.maxQueueSeconds = 100.0;
    ServerMachine server(simulator, "s1", config);
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        if (server.offer(makeRequest(i, 1.0)))
            ++accepted;
    }
    EXPECT_EQ(accepted, 5);
    EXPECT_EQ(server.activeConnections(), 5);
}

TEST(ServerMachine, PowerStateMachine)
{
    sim::Simulator simulator;
    ServerConfig config;
    config.bootSeconds = 90.0;
    ServerMachine server(simulator, "s1", config);
    std::vector<PowerState> transitions;
    server.setStateFn([&](const ServerMachine &, PowerState state) {
        transitions.push_back(state);
    });

    EXPECT_TRUE(server.isOn());
    server.beginShutdown(); // idle -> immediate off
    EXPECT_TRUE(server.isOff());
    EXPECT_FALSE(server.offer(makeRequest(1, 0.01)));

    server.powerOn();
    EXPECT_EQ(server.powerState(), PowerState::Booting);
    EXPECT_FALSE(server.offer(makeRequest(2, 0.01)));
    simulator.runUntil(sim::seconds(89.0));
    EXPECT_EQ(server.powerState(), PowerState::Booting);
    simulator.runUntil(sim::seconds(91.0));
    EXPECT_TRUE(server.isOn());

    ASSERT_EQ(transitions.size(), 3u);
    EXPECT_EQ(transitions[0], PowerState::Off);
    EXPECT_EQ(transitions[1], PowerState::Booting);
    EXPECT_EQ(transitions[2], PowerState::On);
}

TEST(ServerMachine, ShutdownDrainsConnectionsFirst)
{
    sim::Simulator simulator;
    ServerMachine server(simulator, "s1");
    server.offer(makeRequest(1, 0.5));
    server.beginShutdown();
    EXPECT_EQ(server.powerState(), PowerState::Draining);
    EXPECT_FALSE(server.offer(makeRequest(2, 0.01))); // refusing new work
    simulator.runToCompletion();
    EXPECT_TRUE(server.isOff());
    EXPECT_EQ(server.served(), 1u); // the in-flight request finished
}

TEST(ThermalBridge, FeedsUtilizationsIntoSolverEachSecond)
{
    sim::Simulator simulator;
    core::Solver solver;
    solver.addMachine(core::table1Server("s1"));
    ThermalBridge bridge(simulator, solver);
    ServerMachine server(simulator, "s1");
    bridge.attach(server, core::table1Server("s1"));
    bridge.start();

    // 0.5 s of CPU work in the first second -> cpu utilization 0.5.
    server.offer(makeRequest(1, 0.5));
    simulator.runUntil(sim::seconds(1));
    EXPECT_NEAR(solver.machine("s1").utilization("cpu"), 0.5, 1e-9);
    EXPECT_EQ(solver.iterations(), 1u);

    simulator.runUntil(sim::seconds(600));
    EXPECT_EQ(solver.iterations(), 600u);
    // Mostly idle since: utilization decayed to zero, but the machine
    // still burns idle power, so it sits above ambient.
    EXPECT_NEAR(solver.machine("s1").utilization("cpu"), 0.0, 1e-9);
    EXPECT_GT(solver.temperature("s1", "cpu"), 22.0);
}

TEST(ThermalBridge, PowerOffCoolsTheMachine)
{
    sim::Simulator simulator;
    core::Solver solver;
    solver.addMachine(core::table1Server("s1"));
    ThermalBridge bridge(simulator, solver);
    ServerMachine server(simulator, "s1");
    bridge.attach(server, core::table1Server("s1"));
    bridge.start();

    simulator.runUntil(sim::minutes(30));
    double hot = solver.temperature("s1", "cpu");
    EXPECT_GT(hot, 25.0); // idle power keeps it warm

    server.beginShutdown();
    simulator.runUntil(sim::minutes(90));
    double cold = solver.temperature("s1", "cpu");
    EXPECT_LT(cold, hot - 3.0); // cools substantially while off

    server.powerOn();
    simulator.runUntil(sim::minutes(180));
    EXPECT_NEAR(solver.temperature("s1", "cpu"), hot, 0.5); // back up
}

} // namespace
} // namespace cluster
} // namespace mercury
