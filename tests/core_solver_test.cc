/**
 * @file
 * Tests for the Solver facade: iteration accounting, aliases, named
 * queries, utilization routing.
 */

#include <gtest/gtest.h>

#include "core/solver.hh"

namespace mercury {
namespace core {
namespace {

TEST(Solver, IterationAccounting)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    EXPECT_EQ(solver.iterations(), 0u);
    solver.iterate();
    EXPECT_EQ(solver.iterations(), 1u);
    solver.run(59.0);
    EXPECT_EQ(solver.iterations(), 60u);
    EXPECT_DOUBLE_EQ(solver.emulatedSeconds(), 60.0);
}

TEST(Solver, CustomIterationPeriod)
{
    SolverConfig config;
    config.iterationSeconds = 0.5;
    Solver solver(config);
    solver.addMachine(table1Server("m1"));
    solver.run(10.0);
    EXPECT_EQ(solver.iterations(), 20u);
    EXPECT_DOUBLE_EQ(solver.emulatedSeconds(), 10.0);
}

TEST(Solver, RunFloorsPartialIterations)
{
    // run() executes floor(seconds / iterationSeconds) whole
    // iterations. The old lround() rounded to nearest, so run(10.6)
    // silently did one iteration more than run(10.4).
    Solver solver;
    solver.addMachine(table1Server("m1"));
    solver.run(10.4);
    EXPECT_EQ(solver.iterations(), 10u);
    solver.run(10.6);
    EXPECT_EQ(solver.iterations(), 20u);
    solver.run(0.9); // less than one iteration: nothing happens
    EXPECT_EQ(solver.iterations(), 20u);
}

TEST(Solver, RunKeepsExactMultiplesDespiteFloatDivision)
{
    SolverConfig config;
    config.iterationSeconds = 0.1; // 3.0 / 0.1 != 30 in pure floor
    Solver solver(config);
    solver.addMachine(table1Server("m1"));
    solver.run(3.0);
    EXPECT_EQ(solver.iterations(), 30u);
}

TEST(Solver, ResolvedHandleFastPath)
{
    Solver solver;
    solver.addMachine(table1Server("alpha"));
    solver.addMachine(table1Server("beta"));

    Solver::NodeRef cpu = solver.resolveRef("beta", "cpu");
    Solver::NodeRef disk = solver.resolveRef("beta", "disk"); // alias
    EXPECT_TRUE(solver.isPowered(cpu));

    solver.setUtilization(cpu, 0.8);
    EXPECT_DOUBLE_EQ(solver.machine("beta").utilization("cpu"), 0.8);
    EXPECT_DOUBLE_EQ(solver.temperature(disk),
                     solver.temperature("beta", "disk_platters"));

    EXPECT_FALSE(solver.tryResolveRef("gamma", "cpu").has_value());
    EXPECT_FALSE(solver.tryResolveRef("alpha", "warp_core").has_value());
    EXPECT_DEATH(solver.resolveRef("alpha", "warp_core"),
                 "no component");
}

TEST(Solver, HandleAndStringPathsAgreeAfterStepping)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    Solver::NodeRef cpu = solver.resolveRef("m1", "cpu");
    solver.setUtilization(cpu, 1.0);
    solver.run(500.0);
    EXPECT_EQ(solver.temperature(cpu), solver.temperature("m1", "cpu"));
}

TEST(Solver, DiskAliasResolvesToPlatters)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    EXPECT_EQ(solver.resolveNode("m1", "disk"), "disk_platters");
    EXPECT_EQ(solver.resolveNode("m1", "cpu"), "cpu");
    EXPECT_DOUBLE_EQ(solver.temperature("m1", "disk"),
                     solver.temperature("m1", "disk_platters"));
}

TEST(Solver, SetUtilizationThroughAlias)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    solver.setUtilization("m1", "disk", 0.8);
    EXPECT_DOUBLE_EQ(solver.machine("m1").utilization("disk_platters"),
                     0.8);
}

TEST(Solver, CustomAlias)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    solver.addAlias("processor", "cpu");
    EXPECT_EQ(solver.resolveNode("m1", "processor"), "cpu");
}

TEST(Solver, MachineNamesAndLookup)
{
    Solver solver;
    solver.addMachine(table1Server("alpha"));
    solver.addMachine(table1Server("beta"));
    EXPECT_TRUE(solver.hasMachine("alpha"));
    EXPECT_FALSE(solver.hasMachine("gamma"));
    auto names = solver.machineNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "beta");
}

TEST(Solver, StandaloneInletTemperature)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    solver.setInletTemperature("m1", 30.0);
    EXPECT_DOUBLE_EQ(solver.machine("m1").inletTemperature(), 30.0);
    EXPECT_FALSE(solver.hasRoom());
}

TEST(Solver, MachinesHeatUpUnderLoad)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    double idle = solver.temperature("m1", "cpu");
    solver.setUtilization("m1", "cpu", 1.0);
    solver.run(3600.0);
    EXPECT_GT(solver.temperature("m1", "cpu"), idle + 10.0);
}

} // namespace
} // namespace core
} // namespace mercury
