/**
 * @file
 * Tests for the Solver facade: iteration accounting, aliases, named
 * queries, utilization routing.
 */

#include <gtest/gtest.h>

#include "core/solver.hh"

namespace mercury {
namespace core {
namespace {

TEST(Solver, IterationAccounting)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    EXPECT_EQ(solver.iterations(), 0u);
    solver.iterate();
    EXPECT_EQ(solver.iterations(), 1u);
    solver.run(59.0);
    EXPECT_EQ(solver.iterations(), 60u);
    EXPECT_DOUBLE_EQ(solver.emulatedSeconds(), 60.0);
}

TEST(Solver, CustomIterationPeriod)
{
    SolverConfig config;
    config.iterationSeconds = 0.5;
    Solver solver(config);
    solver.addMachine(table1Server("m1"));
    solver.run(10.0);
    EXPECT_EQ(solver.iterations(), 20u);
    EXPECT_DOUBLE_EQ(solver.emulatedSeconds(), 10.0);
}

TEST(Solver, DiskAliasResolvesToPlatters)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    EXPECT_EQ(solver.resolveNode("m1", "disk"), "disk_platters");
    EXPECT_EQ(solver.resolveNode("m1", "cpu"), "cpu");
    EXPECT_DOUBLE_EQ(solver.temperature("m1", "disk"),
                     solver.temperature("m1", "disk_platters"));
}

TEST(Solver, SetUtilizationThroughAlias)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    solver.setUtilization("m1", "disk", 0.8);
    EXPECT_DOUBLE_EQ(solver.machine("m1").utilization("disk_platters"),
                     0.8);
}

TEST(Solver, CustomAlias)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    solver.addAlias("processor", "cpu");
    EXPECT_EQ(solver.resolveNode("m1", "processor"), "cpu");
}

TEST(Solver, MachineNamesAndLookup)
{
    Solver solver;
    solver.addMachine(table1Server("alpha"));
    solver.addMachine(table1Server("beta"));
    EXPECT_TRUE(solver.hasMachine("alpha"));
    EXPECT_FALSE(solver.hasMachine("gamma"));
    auto names = solver.machineNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "beta");
}

TEST(Solver, StandaloneInletTemperature)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    solver.setInletTemperature("m1", 30.0);
    EXPECT_DOUBLE_EQ(solver.machine("m1").inletTemperature(), 30.0);
    EXPECT_FALSE(solver.hasRoom());
}

TEST(Solver, MachinesHeatUpUnderLoad)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    double idle = solver.temperature("m1", "cpu");
    solver.setUtilization("m1", "cpu", 1.0);
    solver.run(3600.0);
    EXPECT_GT(solver.temperature("m1", "cpu"), idle + 10.0);
}

} // namespace
} // namespace core
} // namespace mercury
