/**
 * @file
 * The region story that motivates Freon-EC (Section 4.2): "an
 * intuitive scheme for a room with two air conditioners would create
 * two regions ... The failure of an air conditioner would most
 * strongly affect the servers in its associated region." Here a
 * two-AC room loses one AC; the machines it cooled heat up, and
 * Freon-EC's replacements must come from the healthy region.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cluster/server_machine.hh"
#include "cluster/thermal_bridge.hh"
#include "core/solver.hh"
#include "fiddle/command.hh"
#include "freon/controller.hh"
#include "freon/tempd.hh"
#include "lb/load_balancer.hh"
#include "sensor/client.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace mercury {
namespace {

/** Two-AC room: ac0 cools m1/m3 (region 0), ac1 cools m2/m4. */
core::RoomSpec
twoAcRoom()
{
    core::RoomSpec room;
    room.name = "two_ac_room";
    for (const char *ac : {"ac0", "ac1"}) {
        core::RoomNodeSpec node;
        node.name = ac;
        node.kind = core::RoomNodeKind::Source;
        node.temperature = 21.6;
        room.nodes.push_back(node);
    }
    core::RoomNodeSpec sink;
    sink.name = "return";
    sink.kind = core::RoomNodeKind::Sink;
    room.nodes.push_back(sink);
    for (const char *name : {"m1", "m2", "m3", "m4"}) {
        core::RoomNodeSpec node;
        node.name = name;
        node.kind = core::RoomNodeKind::Machine;
        node.machine = name;
        room.nodes.push_back(node);
        room.edges.push_back({name, "return", 1.0});
    }
    room.edges.push_back({"ac0", "m1", 0.5});
    room.edges.push_back({"ac0", "m3", 0.5});
    room.edges.push_back({"ac1", "m2", 0.5});
    room.edges.push_back({"ac1", "m4", 0.5});
    return room;
}

TEST(RegionScenario, AcFailureHeatsOnlyItsRegion)
{
    core::Solver solver;
    for (const char *name : {"m1", "m2", "m3", "m4"})
        solver.addMachine(core::table1Server(name));
    solver.setRoom(twoAcRoom());
    for (const char *name : {"m1", "m2", "m3", "m4"})
        solver.setUtilization(name, "cpu", 0.6);
    solver.run(20000.0);
    double m1_before = solver.temperature("m1", "cpu");
    double m2_before = solver.temperature("m2", "cpu");

    // ac0 fails: its supply air warms by 12 degC.
    fiddle::FiddleResult result =
        fiddle::applyLine(solver, "room ac ac0 33.6");
    ASSERT_TRUE(result.ok) << result.message;
    solver.run(20000.0);

    EXPECT_NEAR(solver.temperature("m1", "cpu"), m1_before + 12.0, 0.3);
    EXPECT_NEAR(solver.temperature("m3", "cpu"),
                solver.temperature("m1", "cpu"), 0.3);
    EXPECT_NEAR(solver.temperature("m2", "cpu"), m2_before, 0.3);
}

TEST(RegionScenario, FreonEcReplacesFromTheHealthyRegion)
{
    sim::Simulator simulator;
    core::Solver solver;
    std::vector<std::string> names{"m1", "m2", "m3", "m4"};
    std::vector<core::MachineSpec> specs;
    for (const std::string &name : names) {
        specs.push_back(core::table1Server(name));
        solver.addMachine(specs.back());
    }
    solver.setRoom(twoAcRoom());

    cluster::ThermalBridge bridge(simulator, solver);
    std::vector<std::unique_ptr<cluster::ServerMachine>> machines;
    lb::LoadBalancer balancer;
    for (size_t i = 0; i < names.size(); ++i) {
        machines.push_back(std::make_unique<cluster::ServerMachine>(
            simulator, names[i]));
        balancer.addServer(machines.back().get());
        bridge.attach(*machines.back(), specs[i]);
    }
    bridge.start();

    freon::FreonController::Options options;
    options.policy = freon::PolicyKind::FreonEC;
    options.regionOf = {{"m1", 0}, {"m3", 0}, {"m2", 1}, {"m4", 1}};
    freon::FreonController controller(simulator, balancer, options);
    controller.start();

    std::vector<std::unique_ptr<sensor::SensorClient>> sensors;
    std::vector<std::unique_ptr<freon::Tempd>> tempds;
    for (const std::string &name : names) {
        sensors.push_back(std::make_unique<sensor::SensorClient>(
            std::make_unique<sensor::LocalTransport>(bridge.service()),
            name));
        sensor::SensorClient *client = sensors.back().get();
        core::ThermalGraph &graph = solver.machine(name);
        tempds.push_back(std::make_unique<freon::Tempd>(
            simulator, name, freon::FreonConfig::table1Defaults(),
            [client](const std::string &component) {
                return client->read(component);
            },
            [&controller](const freon::TempdReport &report) {
                controller.onReport(report);
            },
            [&graph, &solver, name](const std::string &component) {
                return graph.utilization(
                    solver.resolveNode(name, component));
            }));
        tempds.back()->start();
    }

    // Sustained moderate load: heavy enough that EC keeps ~3 servers
    // on, light enough that one hot server can be swapped out.
    workload::WorkloadConfig workload_config;
    workload_config.duration = 4000.0;
    workload_config.valleyRate = 170.0;
    workload_config.peakRate = 171.0; // effectively flat
    workload::WorkloadGenerator generator(simulator, balancer,
                                          workload_config);
    generator.start();

    // The ac0 failure strikes at 900 s and persists.
    simulator.at(sim::seconds(900), [&solver] {
        fiddle::applyLine(solver, "room ac ac0 36.6");
    });

    simulator.runUntil(sim::seconds(4000));

    // Region 0's machines saw the emergency; at least one was powered
    // off, and any machine powered *on* as a replacement came from
    // region 1 if one was available there.
    EXPECT_GT(controller.serversTurnedOff(), 0u);
    bool region0_off = !balancer.server("m1").isOn() ||
                       !balancer.server("m3").isOn();
    EXPECT_TRUE(region0_off);
    // The healthy region carries the service: nothing was dropped
    // outright at the end state and region-1 machines stayed safe.
    EXPECT_LT(solver.temperature("m2", "cpu"), 76.0);
    EXPECT_LT(solver.temperature("m4", "cpu"), 76.0);
    EXPECT_LT(balancer.dropRate(), 0.02);
}

} // namespace
} // namespace mercury
