/**
 * @file
 * Tests for the offline trace mode: CSV round trip, replication (the
 * paper's trick to emulate clusters larger than the testbed) and the
 * trace runner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/solver.hh"
#include "core/trace.hh"

namespace mercury {
namespace core {
namespace {

TEST(UtilizationTrace, KeepsSamplesSorted)
{
    UtilizationTrace trace;
    trace.add(10.0, "m1", "cpu", 0.5);
    trace.add(5.0, "m1", "cpu", 0.2);
    trace.add(7.0, "m1", "disk", 0.1);
    const auto &samples = trace.samples();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_DOUBLE_EQ(samples[0].time, 5.0);
    EXPECT_DOUBLE_EQ(samples[1].time, 7.0);
    EXPECT_DOUBLE_EQ(samples[2].time, 10.0);
    EXPECT_DOUBLE_EQ(trace.duration(), 10.0);
}

TEST(UtilizationTrace, CsvRoundTrip)
{
    UtilizationTrace trace;
    trace.add(0.0, "m1", "cpu", 0.25);
    trace.add(1.0, "m1", "disk", 0.5);
    trace.add(2.0, "m2", "cpu", 1.0);

    std::ostringstream out;
    trace.save(out);

    std::istringstream in(out.str());
    UtilizationTrace loaded = UtilizationTrace::load(in);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded.samples()[1].machine, "m1");
    EXPECT_EQ(loaded.samples()[1].component, "disk");
    EXPECT_DOUBLE_EQ(loaded.samples()[1].utilization, 0.5);
    EXPECT_EQ(loaded.samples()[2].machine, "m2");
}

TEST(UtilizationTrace, LoadSkipsCommentsAndHeader)
{
    std::istringstream in(
        "time_s,machine,component,utilization\n"
        "# a comment\n"
        "1.5,m1,cpu,0.75\n"
        "\n"
        "2.5,m1,cpu,0.25\n");
    UtilizationTrace trace = UtilizationTrace::load(in);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace.samples()[0].time, 1.5);
    EXPECT_DOUBLE_EQ(trace.samples()[0].utilization, 0.75);
}

TEST(UtilizationTrace, ReplicationClonesMachines)
{
    UtilizationTrace trace;
    trace.add(0.0, "m1", "cpu", 0.5);
    trace.add(1.0, "m1", "cpu", 0.7);
    trace.add(0.5, "other", "cpu", 0.1);

    UtilizationTrace big = trace.replicated(
        {{"m1", {"m1", "m2", "m3", "m4"}}});
    // 2 samples x 4 clones + 1 untouched = 9.
    EXPECT_EQ(big.size(), 9u);
    size_t m4_count = 0;
    for (const auto &sample : big.samples()) {
        if (sample.machine == "m4")
            ++m4_count;
    }
    EXPECT_EQ(m4_count, 2u);
}

TEST(TraceRunner, AppliesUtilizationsAtTheRightTimes)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));

    UtilizationTrace trace;
    trace.add(0.0, "m1", "cpu", 1.0);
    trace.add(100.0, "m1", "cpu", 0.0);

    TraceRunner runner(solver, trace);
    runner.record("m1", "cpu");
    runner.run(200.0);

    const TimeSeries &series = runner.series("m1", "cpu");
    EXPECT_EQ(series.size(), 200u);
    // Hot phase rises, cool phase falls.
    EXPECT_GT(series.sampleAt(100.0), series.sampleAt(1.0));
    EXPECT_LT(series.sampleAt(200.0), series.sampleAt(100.0));
}

TEST(TraceRunner, RecordAllCoversEveryNode)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    UtilizationTrace trace;
    trace.add(0.0, "m1", "cpu", 0.5);
    TraceRunner runner(solver, trace);
    runner.recordAll();
    runner.run(10.0);
    EXPECT_EQ(runner.allSeries().size(), 14u);
    for (const TimeSeries &ts : runner.allSeries())
        EXPECT_EQ(ts.size(), 10u);
}

TEST(TraceRunner, CsvOutputShape)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    UtilizationTrace trace;
    trace.add(0.0, "m1", "cpu", 1.0);
    TraceRunner runner(solver, trace);
    runner.record("m1", "cpu");
    runner.record("m1", "cpu_air");
    runner.run(5.0);

    std::ostringstream out;
    runner.writeCsv(out);
    std::string text = out.str();
    EXPECT_NE(text.find("time_s,m1.cpu,m1.cpu_air"), std::string::npos);
    // Header + 5 rows.
    size_t lines = std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(lines, 6u);
}

TEST(TraceRunner, AliasWorksInRecord)
{
    Solver solver;
    solver.addMachine(table1Server("m1"));
    UtilizationTrace trace;
    trace.add(0.0, "m1", "disk", 1.0); // alias in the trace itself
    TraceRunner runner(solver, trace);
    runner.record("m1", "disk");
    runner.run(50.0);
    EXPECT_GT(runner.series("m1", "disk").lastValue(), 21.6);
}

} // namespace
} // namespace core
} // namespace mercury
