/**
 * @file
 * Physics tests for the ThermalGraph: analytic equilibria, first-order
 * transient behaviour, mass-flow propagation, pins and dynamic
 * reconfiguration (the fiddle entry points).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/thermal_graph.hh"
#include "util/units.hh"

namespace mercury {
namespace core {
namespace {

/**
 * Minimal machine: inlet -> air -> exhaust, one powered component
 * coupled to the air. Power is fixed (pmin == pmax) so the analytic
 * steady state is exact.
 */
MachineSpec
tinyMachine(double power_w, double k, double fan_cfm, double mass = 0.1,
            double specific_heat = 100.0)
{
    MachineSpec spec;
    spec.name = "tiny";
    spec.inletTemperature = 21.6;
    spec.fanCfm = fan_cfm;
    spec.initialTemperature = 21.6;

    NodeSpec comp;
    comp.name = "comp";
    comp.kind = NodeKind::Component;
    comp.mass = mass;
    comp.specificHeat = specific_heat;
    comp.minPower = power_w;
    comp.maxPower = power_w;
    comp.hasPower = true;
    spec.nodes.push_back(comp);

    NodeSpec inlet;
    inlet.name = "inlet";
    inlet.kind = NodeKind::Inlet;
    spec.nodes.push_back(inlet);

    NodeSpec air;
    air.name = "air";
    air.kind = NodeKind::Air;
    spec.nodes.push_back(air);

    NodeSpec exhaust;
    exhaust.name = "exhaust";
    exhaust.kind = NodeKind::Exhaust;
    spec.nodes.push_back(exhaust);

    spec.heatEdges.push_back({"comp", "air", k});
    spec.airEdges.push_back({"inlet", "air", 1.0});
    spec.airEdges.push_back({"air", "exhaust", 1.0});
    return spec;
}

TEST(ThermalGraph, RejectsInletLessSpec)
{
    // Without this guard inlet_ would default to node 0 and the
    // constructor would silently clobber that node's initial
    // temperature with spec.inletTemperature.
    MachineSpec spec = tinyMachine(10.0, 1.0, 38.6);
    spec.nodes.erase(
        std::remove_if(spec.nodes.begin(), spec.nodes.end(),
                       [](const NodeSpec &ns) {
                           return ns.kind == NodeKind::Inlet;
                       }),
        spec.nodes.end());
    std::vector<std::string> problems = validate(spec);
    bool mentions_inlet = false;
    for (const std::string &problem : problems)
        mentions_inlet |= problem.find("inlet") != std::string::npos;
    EXPECT_TRUE(mentions_inlet);
    EXPECT_DEATH(ThermalGraph{spec}, "inlet");
}

TEST(ThermalGraph, RejectsExhaustLessSpec)
{
    MachineSpec spec = tinyMachine(10.0, 1.0, 38.6);
    spec.nodes.erase(
        std::remove_if(spec.nodes.begin(), spec.nodes.end(),
                       [](const NodeSpec &ns) {
                           return ns.kind == NodeKind::Exhaust;
                       }),
        spec.nodes.end());
    EXPECT_DEATH(ThermalGraph{spec}, "exhaust");
}

TEST(ThermalGraph, SubstepPlanTracksHeatEdgeChanges)
{
    // substepsFor() is cached between mutations; stiffening an edge
    // must invalidate the plan, not keep serving the stale count.
    MachineSpec spec = tinyMachine(10.0, 1.0, 38.6);
    ThermalGraph graph(spec);
    int relaxed = graph.substepsFor(1.0);
    graph.setHeatK("comp", "air", 200.0);
    int stiff = graph.substepsFor(1.0);
    EXPECT_GT(stiff, relaxed);
    graph.setHeatK("comp", "air", 1.0);
    EXPECT_EQ(graph.substepsFor(1.0), relaxed);
}

TEST(ThermalGraph, AnalyticSteadyState)
{
    const double power = 20.0;
    const double k = 2.0;
    const double fan = 17.0;
    ThermalGraph graph(tinyMachine(power, k, fan));

    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);

    double mdot_c = units::cfmToKgPerS(fan) * units::kAirSpecificHeat;
    double expected_air = 21.6 + power / mdot_c;
    double expected_comp = expected_air + power / k;

    EXPECT_NEAR(graph.temperature("air"), expected_air, 0.01);
    EXPECT_NEAR(graph.temperature("comp"), expected_comp, 0.01);
    EXPECT_NEAR(graph.exhaustTemperature(), expected_air, 0.01);
}

TEST(ThermalGraph, FirstOrderTransientMatchesClosedForm)
{
    const double power = 20.0;
    const double k = 2.0;
    const double fan = 17.0;
    const double mass = 0.5;
    const double c = 200.0;
    ThermalGraph graph(tinyMachine(power, k, fan, mass, c));

    // Effective conductance to the (instantaneous) air stream:
    // k_eff = k F / (F + k), F = mdot c_air.
    double F = units::cfmToKgPerS(fan) * units::kAirSpecificHeat;
    double k_eff = k * F / (F + k);
    double tau = mass * c / k_eff;
    double t_final = 21.6 + power / k_eff;

    double t = 0.0;
    for (int i = 0; i < 1000; ++i) {
        graph.step(1.0);
        t += 1.0;
        double expected =
            t_final - (t_final - 21.6) * std::exp(-t / tau);
        EXPECT_NEAR(graph.temperature("comp"), expected,
                    0.02 * (t_final - 21.6))
            << "at t=" << t;
    }
}

TEST(ThermalGraph, EnergyBookkeeping)
{
    ThermalGraph graph(tinyMachine(20.0, 2.0, 17.0));
    for (int i = 0; i < 100; ++i)
        graph.step(1.0);
    EXPECT_NEAR(graph.energyConsumed(), 2000.0, 1e-6);
    EXPECT_DOUBLE_EQ(graph.totalPower(), 20.0);
}

TEST(ThermalGraph, UtilizationRaisesPowerAndTemperature)
{
    MachineSpec spec = tinyMachine(0.0, 2.0, 17.0);
    // Make the component load-dependent: 5 W idle, 25 W busy.
    for (NodeSpec &node : spec.nodes) {
        if (node.name == "comp") {
            node.minPower = 5.0;
            node.maxPower = 25.0;
        }
    }
    ThermalGraph graph(spec);
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    double idle_temp = graph.temperature("comp");
    EXPECT_DOUBLE_EQ(graph.power("comp"), 5.0);

    graph.setUtilization("comp", 1.0);
    EXPECT_DOUBLE_EQ(graph.power("comp"), 25.0);
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    double busy_temp = graph.temperature("comp");
    EXPECT_GT(busy_temp, idle_temp + 1.0);
}

TEST(ThermalGraph, UtilizationIsClamped)
{
    ThermalGraph graph(tinyMachine(10.0, 2.0, 17.0));
    graph.setUtilization("comp", 5.0);
    EXPECT_DOUBLE_EQ(graph.utilization("comp"), 1.0);
    graph.setUtilization("comp", -3.0);
    EXPECT_DOUBLE_EQ(graph.utilization("comp"), 0.0);
}

TEST(ThermalGraph, PinHoldsTemperature)
{
    ThermalGraph graph(tinyMachine(50.0, 2.0, 17.0));
    graph.pinTemperature("comp", 42.0);
    for (int i = 0; i < 100; ++i)
        graph.step(1.0);
    EXPECT_DOUBLE_EQ(graph.temperature("comp"), 42.0);
    EXPECT_TRUE(graph.isPinned("comp"));

    graph.unpinTemperature("comp");
    for (int i = 0; i < 5000; ++i)
        graph.step(1.0);
    EXPECT_GT(graph.temperature("comp"), 43.0); // free to evolve again
}

TEST(ThermalGraph, SetTemperatureJumpsButEvolves)
{
    ThermalGraph graph(tinyMachine(20.0, 2.0, 17.0));
    graph.setTemperature("comp", 80.0);
    EXPECT_DOUBLE_EQ(graph.temperature("comp"), 80.0);
    graph.step(1.0);
    // Hotter than equilibrium, so it must cool.
    EXPECT_LT(graph.temperature("comp"), 80.0);
}

TEST(ThermalGraph, InletTemperatureShiftsWholeSystem)
{
    ThermalGraph graph(tinyMachine(20.0, 2.0, 17.0));
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    double comp_before = graph.temperature("comp");

    graph.setInletTemperature(31.6); // +10 C emergency
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    EXPECT_NEAR(graph.temperature("comp"), comp_before + 10.0, 0.05);
}

TEST(ThermalGraph, HigherFanFlowCoolsComponent)
{
    ThermalGraph slow(tinyMachine(20.0, 2.0, 10.0));
    ThermalGraph fast(tinyMachine(20.0, 2.0, 40.0));
    for (int i = 0; i < 20000; ++i) {
        slow.step(1.0);
        fast.step(1.0);
    }
    EXPECT_GT(slow.temperature("comp"), fast.temperature("comp") + 1.0);
}

TEST(ThermalGraph, SetFanCfmTakesEffect)
{
    ThermalGraph graph(tinyMachine(20.0, 2.0, 10.0));
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    double before = graph.temperature("comp");
    graph.setFanCfm(40.0);
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    EXPECT_LT(graph.temperature("comp"), before - 1.0);
}

TEST(ThermalGraph, SetHeatKTightensCoupling)
{
    ThermalGraph graph(tinyMachine(20.0, 1.0, 17.0));
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    double loose = graph.temperature("comp");
    EXPECT_DOUBLE_EQ(graph.heatK("comp", "air"), 1.0);

    graph.setHeatK("comp", "air", 4.0);
    for (int i = 0; i < 20000; ++i)
        graph.step(1.0);
    // Component-air delta is P/k: 20 -> 5 degrees.
    EXPECT_NEAR(loose - graph.temperature("comp"), 15.0, 0.1);
}

TEST(ThermalGraph, Table1MassFlowConservation)
{
    ThermalGraph graph(table1Server());
    double inlet_flow = units::cfmToKgPerS(38.6);
    EXPECT_NEAR(graph.massFlow(graph.nodeId("inlet")), inlet_flow, 1e-12);
    EXPECT_NEAR(graph.massFlow(graph.nodeId("exhaust")), inlet_flow, 1e-9);
    // cpu_air receives 15% of the PS branch plus 5% of the void air:
    // 0.15*0.5 + 0.05*0.925 = 0.12125 of the inlet flow.
    EXPECT_NEAR(graph.massFlow(graph.nodeId("cpu_air")),
                0.12125 * inlet_flow, 1e-9);
}

TEST(ThermalGraph, Table1SteadyStateIsOrderedSensibly)
{
    ThermalGraph graph(table1Server());
    graph.setUtilization("cpu", 1.0);
    graph.setUtilization("disk_platters", 0.5);
    for (int i = 0; i < 50000; ++i)
        graph.step(1.0);

    double inlet = graph.temperature("inlet");
    double cpu = graph.temperature("cpu");
    double cpu_air = graph.temperature("cpu_air");
    double exhaust = graph.exhaustTemperature();
    double platters = graph.temperature("disk_platters");
    double shell = graph.temperature("disk_shell");

    EXPECT_DOUBLE_EQ(inlet, 21.6);
    EXPECT_GT(cpu, cpu_air);          // source hotter than its air
    EXPECT_GT(cpu_air, inlet);        // air picks up heat
    EXPECT_GT(exhaust, inlet);        // case exhausts warm air
    EXPECT_GT(platters, shell);       // platters generate the heat
    EXPECT_GT(shell, inlet);
    EXPECT_LT(cpu, 120.0);            // sane magnitude
    // Total enthalpy rise of the air must match total power:
    // dT = P / (mdot c).
    double mdot_c =
        units::cfmToKgPerS(38.6) * units::kAirSpecificHeat;
    EXPECT_NEAR(exhaust - 21.6, graph.totalPower() / mdot_c, 0.05);
}

TEST(ThermalGraph, Table1UsesSingleSubstepAtOneSecond)
{
    ThermalGraph graph(table1Server());
    EXPECT_EQ(graph.substepsFor(1.0), 1);
    EXPECT_GT(graph.substepsFor(60.0), 1);
}

TEST(ThermalGraph, StiffGraphGetsSubstepped)
{
    // A very light component with strong coupling is stiff at 1 s.
    MachineSpec spec = tinyMachine(5.0, 50.0, 17.0, 0.01, 100.0);
    ThermalGraph graph(spec);
    EXPECT_GT(graph.substepsFor(1.0), 10);
    // And it must still integrate stably to the analytic equilibrium.
    for (int i = 0; i < 5000; ++i)
        graph.step(1.0);
    double F = units::cfmToKgPerS(17.0) * units::kAirSpecificHeat;
    double expected = 21.6 + 5.0 / F + 5.0 / 50.0;
    EXPECT_NEAR(graph.temperature("comp"), expected, 0.05);
}

TEST(ThermalGraph, StagnantAirIntegratesWithoutBlowup)
{
    // Fan off: the case becomes a sealed box; temperatures rise
    // monotonically but remain finite over a bounded horizon.
    ThermalGraph graph(tinyMachine(5.0, 2.0, 0.0));
    double last = graph.temperature("air");
    for (int i = 0; i < 600; ++i) {
        graph.step(1.0);
        double now = graph.temperature("air");
        EXPECT_GE(now, last - 1e-9);
        EXPECT_TRUE(std::isfinite(now));
        last = now;
    }
    EXPECT_GT(last, 21.6);
}

TEST(ThermalGraph, BranchMixingIsFlowWeighted)
{
    // Two parallel branches, heat dumped into branch A only; the
    // exhaust is the flow-weighted mix.
    MachineSpec spec;
    spec.name = "branches";
    spec.inletTemperature = 20.0;
    spec.fanCfm = 20.0;
    spec.initialTemperature = 20.0;

    NodeSpec comp;
    comp.name = "comp";
    comp.kind = NodeKind::Component;
    comp.mass = 0.2;
    comp.specificHeat = 300.0;
    comp.minPower = 10.0;
    comp.maxPower = 10.0;
    comp.hasPower = true;
    spec.nodes.push_back(comp);
    for (const char *name : {"air_a", "air_b"}) {
        NodeSpec air;
        air.name = name;
        air.kind = NodeKind::Air;
        spec.nodes.push_back(air);
    }
    NodeSpec inlet;
    inlet.name = "inlet";
    inlet.kind = NodeKind::Inlet;
    spec.nodes.push_back(inlet);
    NodeSpec exhaust;
    exhaust.name = "exhaust";
    exhaust.kind = NodeKind::Exhaust;
    spec.nodes.push_back(exhaust);

    spec.heatEdges.push_back({"comp", "air_a", 2.0});
    spec.airEdges.push_back({"inlet", "air_a", 0.25});
    spec.airEdges.push_back({"inlet", "air_b", 0.75});
    spec.airEdges.push_back({"air_a", "exhaust", 1.0});
    spec.airEdges.push_back({"air_b", "exhaust", 1.0});

    ThermalGraph graph(spec);
    for (int i = 0; i < 30000; ++i)
        graph.step(1.0);

    double ta = graph.temperature("air_a");
    double tb = graph.temperature("air_b");
    double mix = 0.25 * ta + 0.75 * tb;
    EXPECT_NEAR(graph.exhaustTemperature(), mix, 1e-6);
    EXPECT_GT(ta, tb); // branch A carries the heat
    EXPECT_NEAR(tb, 20.0, 1e-6);

    // All 10 W leave through 25% of the flow.
    double branch_flow = 0.25 * units::cfmToKgPerS(20.0);
    EXPECT_NEAR(ta - 20.0, 10.0 / (branch_flow * units::kAirSpecificHeat),
                0.01);
}

TEST(ThermalGraph, NodeNamesAndKinds)
{
    ThermalGraph graph(table1Server());
    EXPECT_EQ(graph.nodeCount(), 14u);
    EXPECT_EQ(graph.nodeKind(graph.nodeId("cpu")), NodeKind::Component);
    EXPECT_EQ(graph.nodeKind(graph.nodeId("inlet")), NodeKind::Inlet);
    EXPECT_FALSE(graph.tryNodeId("nonexistent").has_value());
    EXPECT_TRUE(graph.tryNodeId("cpu_air").has_value());
    EXPECT_EQ(graph.nodeNames().size(), 14u);
}

} // namespace
} // namespace core
} // namespace mercury
