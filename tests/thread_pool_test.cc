/**
 * @file
 * Tests for the solver's worker pool. Doubles as the ThreadSanitizer
 * smoke target: the CI TSan job builds this binary (and the
 * serial-vs-parallel solver test) with -fsanitize=thread to catch
 * data races in the dispatch protocol.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/thread_pool.hh"

namespace mercury {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    std::vector<int> order;
    pool.parallelFor(5, [&](size_t i) {
        order.push_back(static_cast<int>(i)); // inline => safe, ordered
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EmptyJobIsANoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, BackToBackJobsReuseWorkers)
{
    ThreadPool pool(4);
    std::atomic<long> sum{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallelFor(64, [&](size_t i) {
            sum += static_cast<long>(i);
        });
    }
    EXPECT_EQ(sum.load(), 50L * (64L * 63L / 2));
}

TEST(ThreadPool, BarrierMakesWorkerWritesVisible)
{
    ThreadPool pool(3);
    std::vector<double> out(256, 0.0);
    pool.parallelFor(out.size(), [&](size_t i) {
        out[i] = static_cast<double>(i) * 0.5;
    });
    // parallelFor is a full barrier: plain (non-atomic) reads are safe.
    double total = std::accumulate(out.begin(), out.end(), 0.0);
    EXPECT_DOUBLE_EQ(total, 0.5 * (255.0 * 256.0 / 2.0));
}

} // namespace
} // namespace mercury
