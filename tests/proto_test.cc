/**
 * @file
 * Wire-format tests: round trips, hostile-input rejection, the fixed
 * 128-byte framing.
 */

#include <gtest/gtest.h>

#include "proto/messages.hh"

namespace mercury {
namespace proto {
namespace {

TEST(Messages, PacketSizeIsPaper128Bytes)
{
    EXPECT_EQ(kMessageSize, 128u);
    EXPECT_EQ(sizeof(Packet), 128u);
}

TEST(Messages, UtilizationUpdateRoundTrip)
{
    UtilizationUpdate msg;
    msg.machine = "machine1";
    msg.component = "disk";
    msg.utilization = 0.375;
    msg.sequence = 987654321ULL;

    auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    const auto *out = std::get_if<UtilizationUpdate>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->machine, "machine1");
    EXPECT_EQ(out->component, "disk");
    EXPECT_DOUBLE_EQ(out->utilization, 0.375);
    EXPECT_EQ(out->sequence, 987654321ULL);
}

TEST(Messages, SensorRequestRoundTrip)
{
    SensorRequest msg;
    msg.requestId = 42;
    msg.machine = "m3";
    msg.component = "cpu_air";

    auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    const auto *out = std::get_if<SensorRequest>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->requestId, 42u);
    EXPECT_EQ(out->machine, "m3");
    EXPECT_EQ(out->component, "cpu_air");
}

TEST(Messages, SensorReplyRoundTrip)
{
    SensorReply msg;
    msg.requestId = 7;
    msg.status = Status::Ok;
    msg.temperature = 67.25;

    auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    const auto *out = std::get_if<SensorReply>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->requestId, 7u);
    EXPECT_EQ(out->status, Status::Ok);
    EXPECT_DOUBLE_EQ(out->temperature, 67.25);
}

TEST(Messages, SensorReplyErrorStatus)
{
    SensorReply msg;
    msg.requestId = 9;
    msg.status = Status::UnknownComponent;

    auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<SensorReply>(*decoded).status,
              Status::UnknownComponent);
}

TEST(Messages, FiddleRoundTrip)
{
    FiddleRequest request;
    request.requestId = 11;
    request.commandLine = "fiddle machine1 temperature inlet 30";
    auto decoded = decode(encode(request));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<FiddleRequest>(*decoded).commandLine,
              request.commandLine);

    FiddleReply reply;
    reply.requestId = 11;
    reply.status = Status::BadCommand;
    reply.message = "unknown machine 'machine9'";
    auto decoded_reply = decode(encode(reply));
    ASSERT_TRUE(decoded_reply.has_value());
    const auto &out = std::get<FiddleReply>(*decoded_reply);
    EXPECT_EQ(out.status, Status::BadCommand);
    EXPECT_EQ(out.message, reply.message);
}

TEST(Messages, RejectsBadMagic)
{
    Packet packet = encode(SensorRequest{1, "m1", "cpu"});
    packet[0] ^= 0xff;
    EXPECT_FALSE(decode(packet).has_value());
}

TEST(Messages, RejectsBadVersion)
{
    Packet packet = encode(SensorRequest{1, "m1", "cpu"});
    packet[4] = 99;
    EXPECT_FALSE(decode(packet).has_value());
}

TEST(Messages, RejectsUnknownType)
{
    Packet packet = encode(SensorRequest{1, "m1", "cpu"});
    packet[5] = 200;
    EXPECT_FALSE(decode(packet).has_value());
}

TEST(Messages, RejectsWrongLength)
{
    Packet packet = encode(SensorRequest{1, "m1", "cpu"});
    EXPECT_FALSE(decode(packet.data(), 64).has_value());
    EXPECT_FALSE(decode(packet.data(), 127).has_value());
    EXPECT_TRUE(decode(packet.data(), 128).has_value());
}

TEST(Messages, RejectsEmptyNames)
{
    UtilizationUpdate msg;
    msg.machine = "";
    msg.component = "cpu";
    EXPECT_FALSE(decode(encode(msg)).has_value());
}

TEST(Messages, AllZeroPacketRejected)
{
    Packet packet{};
    EXPECT_FALSE(decode(packet).has_value());
}

TEST(Messages, OversizedFieldIsFatal)
{
    UtilizationUpdate msg;
    msg.machine = std::string(40, 'x'); // field width is 32
    msg.component = "cpu";
    EXPECT_EXIT(encode(msg), testing::ExitedWithCode(1), "too long");
}

TEST(Messages, StatusNames)
{
    EXPECT_STREQ(statusName(Status::Ok), "ok");
    EXPECT_STREQ(statusName(Status::BadCommand), "bad command");
}

} // namespace
} // namespace proto
} // namespace mercury
