/**
 * @file
 * Wire-format tests: round trips, hostile-input rejection, the fixed
 * 128-byte framing.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "proto/messages.hh"
#include "util/random.hh"

namespace mercury {
namespace proto {
namespace {

TEST(Messages, PacketSizeIsPaper128Bytes)
{
    EXPECT_EQ(kMessageSize, 128u);
    EXPECT_EQ(sizeof(Packet), 128u);
}

TEST(Messages, UtilizationUpdateRoundTrip)
{
    UtilizationUpdate msg;
    msg.machine = "machine1";
    msg.component = "disk";
    msg.utilization = 0.375;
    msg.sequence = 987654321ULL;

    auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    const auto *out = std::get_if<UtilizationUpdate>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->machine, "machine1");
    EXPECT_EQ(out->component, "disk");
    EXPECT_DOUBLE_EQ(out->utilization, 0.375);
    EXPECT_EQ(out->sequence, 987654321ULL);
}

TEST(Messages, SensorRequestRoundTrip)
{
    SensorRequest msg;
    msg.requestId = 42;
    msg.machine = "m3";
    msg.component = "cpu_air";

    auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    const auto *out = std::get_if<SensorRequest>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->requestId, 42u);
    EXPECT_EQ(out->machine, "m3");
    EXPECT_EQ(out->component, "cpu_air");
}

TEST(Messages, SensorReplyRoundTrip)
{
    SensorReply msg;
    msg.requestId = 7;
    msg.status = Status::Ok;
    msg.temperature = 67.25;

    auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    const auto *out = std::get_if<SensorReply>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->requestId, 7u);
    EXPECT_EQ(out->status, Status::Ok);
    EXPECT_DOUBLE_EQ(out->temperature, 67.25);
}

TEST(Messages, SensorReplyErrorStatus)
{
    SensorReply msg;
    msg.requestId = 9;
    msg.status = Status::UnknownComponent;

    auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<SensorReply>(*decoded).status,
              Status::UnknownComponent);
}

TEST(Messages, FiddleRoundTrip)
{
    FiddleRequest request;
    request.requestId = 11;
    request.commandLine = "fiddle machine1 temperature inlet 30";
    auto decoded = decode(encode(request));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<FiddleRequest>(*decoded).commandLine,
              request.commandLine);

    FiddleReply reply;
    reply.requestId = 11;
    reply.status = Status::BadCommand;
    reply.message = "unknown machine 'machine9'";
    auto decoded_reply = decode(encode(reply));
    ASSERT_TRUE(decoded_reply.has_value());
    const auto &out = std::get<FiddleReply>(*decoded_reply);
    EXPECT_EQ(out.status, Status::BadCommand);
    EXPECT_EQ(out.message, reply.message);
}

TEST(Messages, RejectsBadMagic)
{
    Packet packet = encode(SensorRequest{1, "m1", "cpu"});
    packet[0] ^= 0xff;
    EXPECT_FALSE(decode(packet).has_value());
}

TEST(Messages, RejectsBadVersion)
{
    Packet packet = encode(SensorRequest{1, "m1", "cpu"});
    packet[4] = 99;
    EXPECT_FALSE(decode(packet).has_value());
}

TEST(Messages, RejectsUnknownType)
{
    Packet packet = encode(SensorRequest{1, "m1", "cpu"});
    packet[5] = 200;
    EXPECT_FALSE(decode(packet).has_value());
}

TEST(Messages, RejectsWrongLength)
{
    Packet packet = encode(SensorRequest{1, "m1", "cpu"});
    EXPECT_FALSE(decode(packet.data(), 64).has_value());
    EXPECT_FALSE(decode(packet.data(), 127).has_value());
    EXPECT_TRUE(decode(packet.data(), 128).has_value());
}

TEST(Messages, RejectsEmptyNames)
{
    UtilizationUpdate msg;
    msg.machine = "";
    msg.component = "cpu";
    EXPECT_FALSE(decode(encode(msg)).has_value());
}

TEST(Messages, AllZeroPacketRejected)
{
    Packet packet{};
    EXPECT_FALSE(decode(packet).has_value());
}

TEST(Messages, OversizedFieldIsFatal)
{
    UtilizationUpdate msg;
    msg.machine = std::string(40, 'x'); // field width is 32
    msg.component = "cpu";
    EXPECT_EXIT(encode(msg), testing::ExitedWithCode(1), "too long");
}

TEST(Messages, StatusNames)
{
    EXPECT_STREQ(statusName(Status::Ok), "ok");
    EXPECT_STREQ(statusName(Status::BadCommand), "bad command");
}

TEST(Messages, RequestIdHelpers)
{
    EXPECT_EQ(peekRequestId(encode(SensorRequest{77, "m", "c"})), 77u);
    SensorReply reply;
    reply.requestId = 78;
    EXPECT_EQ(peekRequestId(encode(reply)), 78u);
    FiddleRequest fiddle_request;
    fiddle_request.requestId = 79;
    fiddle_request.commandLine = "m1 fan 20";
    EXPECT_EQ(peekRequestId(encode(fiddle_request)), 79u);
    FiddleReply fiddle_reply;
    fiddle_reply.requestId = 80;
    EXPECT_EQ(peekRequestId(encode(fiddle_reply)), 80u);

    // One-way updates carry no id; corrupt headers yield none.
    UtilizationUpdate update;
    update.machine = "m";
    update.component = "c";
    update.sequence = 9;
    EXPECT_FALSE(peekRequestId(encode(update)).has_value());
    Packet bad = encode(SensorRequest{1, "m", "c"});
    bad[0] ^= 0xff;
    EXPECT_FALSE(peekRequestId(bad).has_value());

    auto decoded = decode(encode(SensorRequest{81, "m", "c"}));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(requestId(*decoded), 81u);
    auto one_way = decode(encode(update));
    ASSERT_TRUE(one_way.has_value());
    EXPECT_FALSE(requestId(*one_way).has_value());
}

TEST(HostileInput, TruncatedAndOversizedLengthsRejected)
{
    Packet packet = encode(SensorRequest{1, "m1", "cpu"});
    for (size_t length : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                          size_t{63}, size_t{127}}) {
        EXPECT_FALSE(decode(packet.data(), length).has_value())
            << length;
    }
    // Oversized buffers are not trusted either: exactly 128 or bust.
    uint8_t oversized[proto::kMessageSize + 16] = {};
    std::memcpy(oversized, packet.data(), packet.size());
    EXPECT_FALSE(decode(oversized, sizeof(oversized)).has_value());
}

TEST(HostileInput, FullWidthUnterminatedNamesDecodeSafely)
{
    // A hostile packet can fill a fixed-width name field end to end
    // with no NUL; the decoder must clamp at the field width.
    Packet packet = encode(SensorRequest{1, "m", "c"});
    for (size_t i = 12; i < 12 + 64; ++i) // both 32-byte name fields
        packet[i] = 0xc3;                 // non-UTF8 garbage
    auto decoded = decode(packet);
    ASSERT_TRUE(decoded.has_value());
    const auto &request = std::get<SensorRequest>(*decoded);
    EXPECT_EQ(request.machine.size(), 32u);
    EXPECT_EQ(request.component.size(), 32u);
}

TEST(HostileInput, FullWidthFiddleCommandDecodesSafely)
{
    FiddleRequest request;
    request.requestId = 3;
    request.commandLine = "x";
    Packet packet = encode(request);
    for (size_t i = 12; i < kMessageSize; ++i)
        packet[i] = 0xfe;
    auto decoded = decode(packet);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<FiddleRequest>(*decoded).commandLine.size(), 116u);
}

TEST(HostileInput, ReservedHeaderBytesAreIgnored)
{
    Packet packet = encode(SensorRequest{5, "m1", "cpu"});
    packet[6] = 0xab;
    packet[7] = 0xcd;
    auto decoded = decode(packet);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<SensorRequest>(*decoded).requestId, 5u);
}

TEST(HostileInput, SeededFuzzNeverCrashes)
{
    Rng rng(0xfeedface);

    // Fully random packets: essentially all rejected, none may crash.
    for (int i = 0; i < 20000; ++i) {
        Packet packet;
        for (auto &byte : packet)
            byte = static_cast<uint8_t>(rng.next());
        (void)decode(packet);
        (void)peekRequestId(packet);
    }

    // Valid header, random type and payload: exercises every decoder
    // branch against garbage field bytes.
    for (int i = 0; i < 20000; ++i) {
        Packet packet;
        for (auto &byte : packet)
            byte = static_cast<uint8_t>(rng.next());
        packet[0] = 0x4d; // 'M'
        packet[1] = 0x52; // 'R'
        packet[2] = 0x43; // 'C'
        packet[3] = 0x31; // '1'
        packet[4] = kVersion;
        packet[5] = static_cast<uint8_t>(rng.uniformInt(0, 8));
        auto decoded = decode(packet);
        if (decoded.has_value()) {
            // Whatever decoded must also answer the id helpers.
            (void)requestId(*decoded);
            (void)peekRequestId(packet);
        }
    }
}

} // namespace
} // namespace proto
} // namespace mercury
