/**
 * @file
 * Control-plane robustness tests: seeded fault injection against the
 * hardened transport loop, sequence-gap loss accounting, the faulty
 * socket over real loopback UDP, EINTR handling, and `fiddle stats`.
 *
 * The acceptance bar (ISSUE 2): zero stale-reply failures in
 * SensorClient::read across >= 10k round trips at 20% injected
 * drop/dup/reorder, with the solver's loss accounting matching the
 * injected loss within +-2%.
 */

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <chrono>
#include <thread>

#include "core/solver.hh"
#include "monitor/monitord.hh"
#include "net/faults.hh"
#include "proto/solver_daemon.hh"
#include "proto/solver_service.hh"
#include "sensor/client.hh"
#include "sensor/transport.hh"

namespace mercury {
namespace {

class FaultFixture : public ::testing::Test
{
  protected:
    FaultFixture()
        : service_(solver_)
    {
        solver_.addMachine(core::table1Server("machine1"));
        solver_.setUtilization("machine1", "cpu", 1.0);
        solver_.run(5000.0);
    }

    core::Solver solver_;
    proto::SolverService service_;
};

TEST(FaultInjector, SameSeedSamePlans)
{
    net::FaultSpec spec;
    spec.dropProbability = 0.2;
    spec.duplicateProbability = 0.1;
    spec.reorderProbability = 0.1;
    spec.delayProbability = 0.1;
    spec.delayMinSeconds = 0.001;
    spec.delayMaxSeconds = 0.01;
    spec.seed = 42;

    net::FaultInjector a(spec), b(spec);
    for (int i = 0; i < 1000; ++i) {
        net::FaultPlan pa = a.plan();
        net::FaultPlan pb = b.plan();
        ASSERT_EQ(pa.drop, pb.drop);
        ASSERT_EQ(pa.copies, pb.copies);
        ASSERT_EQ(pa.reordered, pb.reordered);
        ASSERT_DOUBLE_EQ(pa.delaySeconds, pb.delaySeconds);
    }
    EXPECT_EQ(a.counters().datagrams, 1000u);
    EXPECT_EQ(a.counters().dropped, b.counters().dropped);
    // ~200 of 1000 dropped at p = 0.2.
    EXPECT_GT(a.counters().dropped, 120u);
    EXPECT_LT(a.counters().dropped, 280u);
}

TEST_F(FaultFixture, CleanChannelRoundTrip)
{
    auto transport = std::make_unique<sensor::FaultyTransport>(
        service_, net::FaultSpec{}, net::FaultSpec{});
    const sensor::TransportStats &stats = transport->stats();
    sensor::SensorClient client(std::move(transport), "machine1");

    auto temperature = client.read("cpu");
    ASSERT_TRUE(temperature.has_value());
    EXPECT_NEAR(*temperature, solver_.temperature("machine1", "cpu"),
                1e-9);
    EXPECT_EQ(stats.roundTrips, 1u);
    EXPECT_EQ(stats.attempts, 1u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.staleReplies, 0u);
    EXPECT_EQ(stats.failures, 0u);
}

TEST_F(FaultFixture, DeadlineBudgetCapsTotalWait)
{
    // Every request is dropped: the old scheme would burn a full
    // fresh timeout per retry (10 x 0.04 s); the budget caps it.
    net::FaultSpec black_hole;
    black_hole.dropProbability = 1.0;

    sensor::ChannelTransport::Options options;
    options.deadlineSeconds = 0.05;
    options.attemptTimeoutSeconds = 0.04;
    options.maxAttempts = 10;

    sensor::FaultyTransport transport(service_, black_hole,
                                      net::FaultSpec{}, options);
    net::FaultyChannel &channel = transport.channel();

    proto::SensorRequest request{1, "machine1", "cpu"};
    double start = channel.now();
    EXPECT_FALSE(transport.roundTrip(proto::encode(request)).has_value());
    EXPECT_LE(channel.now() - start, 0.05 + 1e-9);
    EXPECT_EQ(transport.stats().failures, 1u);
    EXPECT_GE(transport.stats().retries, 1u);
}

TEST_F(FaultFixture, StaleRepliesAreDrainedNotReturned)
{
    // Every reply is delayed past the attempt window, so each read's
    // answer arrives while later attempts (and later reads) are
    // waiting. The transport must discard the leftovers by requestId
    // instead of returning them.
    net::FaultSpec late_replies;
    late_replies.delayProbability = 1.0;
    late_replies.delayMinSeconds = 0.03;
    late_replies.delayMaxSeconds = 0.03;

    sensor::ChannelTransport::Options options;
    options.deadlineSeconds = 1.0;
    options.attemptTimeoutSeconds = 0.01;
    options.maxAttempts = 100;

    auto transport = std::make_unique<sensor::FaultyTransport>(
        service_, net::FaultSpec{}, late_replies, options);
    const sensor::TransportStats &stats = transport->stats();
    sensor::SensorClient client(std::move(transport), "machine1");

    auto first = client.read("cpu");
    ASSERT_TRUE(first.has_value());
    EXPECT_NEAR(*first, solver_.temperature("machine1", "cpu"), 1e-9);

    // The second read starts with the first read's retransmit replies
    // still in flight; they must surface as drained stale replies.
    auto second = client.read("disk");
    ASSERT_TRUE(second.has_value());
    EXPECT_NEAR(*second,
                solver_.temperature("machine1", "disk_platters"), 1e-9);
    EXPECT_GE(stats.staleReplies, 2u);
    EXPECT_EQ(stats.failures, 0u);
}

TEST_F(FaultFixture, TenThousandRoundTripsUnderHeavyFaults)
{
    net::FaultSpec request_faults;
    request_faults.dropProbability = 0.2;
    request_faults.duplicateProbability = 0.1;
    request_faults.reorderProbability = 0.05;
    request_faults.reorderDelaySeconds = 0.03;
    request_faults.seed = 1001;

    net::FaultSpec reply_faults = request_faults;
    reply_faults.seed = 2002;

    sensor::ChannelTransport::Options options;
    options.deadlineSeconds = 1.0;
    options.attemptTimeoutSeconds = 0.01;
    options.maxAttempts = 64;

    auto transport = std::make_unique<sensor::FaultyTransport>(
        service_, request_faults, reply_faults, options);
    net::FaultyChannel &channel = transport->channel();
    const sensor::TransportStats &stats = transport->stats();
    sensor::SensorClient client(std::move(transport), "machine1");

    const char *components[] = {"cpu", "disk", "cpu_air"};
    const double expected[] = {
        solver_.temperature("machine1", "cpu"),
        solver_.temperature("machine1", "disk_platters"),
        solver_.temperature("machine1", "cpu_air"),
    };

    const int kReads = 10000;
    double worst_latency = 0.0;
    for (int i = 0; i < kReads; ++i) {
        double start = channel.now();
        auto temperature = client.read(components[i % 3]);
        ASSERT_TRUE(temperature.has_value()) << "read " << i;
        ASSERT_NEAR(*temperature, expected[i % 3], 1e-9) << "read " << i;
        worst_latency = std::max(worst_latency, channel.now() - start);
    }

    // Zero stale-reply failures, bounded latency, faults exercised.
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_EQ(stats.roundTrips, static_cast<uint64_t>(kReads));
    EXPECT_LE(worst_latency, options.deadlineSeconds + 1e-9);
    EXPECT_GT(stats.retries, 0u);
    EXPECT_GT(stats.staleReplies, 0u);
    EXPECT_EQ(service_.sensorReads(),
              service_.received(proto::MessageType::SensorRequest));
}

TEST_F(FaultFixture, LossAccountingMatchesInjectedLoss)
{
    auto injector = std::make_shared<net::FaultInjector>([] {
        net::FaultSpec spec;
        spec.dropProbability = 0.2;
        spec.duplicateProbability = 0.05;
        spec.reorderProbability = 0.05;
        spec.seed = 7;
        return spec;
    }());

    auto source = std::make_unique<monitor::SyntheticSource>();
    source->addComponent("cpu", [](double t) {
        return 0.5 + 0.4 * (t - static_cast<int>(t));
    });
    monitor::Monitord monitord(
        "machine1", std::move(source),
        monitor::Monitord::faultySink(
            monitor::Monitord::serviceSink(service_), injector));

    const int kUpdates = 10000;
    for (int i = 0; i < kUpdates; ++i)
        monitord.tick(i * 1.0);

    const net::FaultInjector::Counters &injected = injector->counters();
    ASSERT_EQ(injected.datagrams, static_cast<uint64_t>(kUpdates));

    proto::SolverService::LossStats detected = service_.lossStats();
    EXPECT_EQ(detected.senders, 1u);

    // Detected loss within +-2% of the injected loss (a final held
    // reorder can leave at most one update unaccounted).
    double tolerance = 0.02 * kUpdates;
    EXPECT_NEAR(static_cast<double>(detected.lost),
                static_cast<double>(injected.dropped), tolerance);
    EXPECT_EQ(detected.duplicates, injected.duplicated);
    EXPECT_GT(detected.reordered, 0u);
    EXPECT_LE(detected.reordered, injected.reordered);

    // Every delivered datagram is accounted for: sent - dropped +
    // duplicates, +-1 for a reordered update still held at the end.
    uint64_t delivered =
        injected.datagrams - injected.dropped + injected.duplicated;
    EXPECT_GE(detected.received + 1, delivered);
    EXPECT_LE(detected.received, delivered);
}

TEST(FaultySocketUdp, DaemonAccountsForInjectedLoss)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("machine1"));

    proto::SolverDaemon::Config config;
    config.port = 0;
    config.iterationSeconds = 0.0;
    config.statsLogSeconds = 0.0;
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    net::FaultSpec spec;
    spec.dropProbability = 0.3;
    spec.duplicateProbability = 0.1;
    spec.reorderProbability = 0.1;
    spec.seed = 99;

    net::UdpSocket socket;
    net::FaultySocket faulty(socket, spec);
    net::Endpoint endpoint{*net::resolveHost("127.0.0.1"), daemon.port()};

    const int kUpdates = 300;
    for (int i = 0; i < kUpdates; ++i) {
        proto::UtilizationUpdate update;
        update.machine = "machine1";
        update.component = "cpu";
        update.utilization = 0.5;
        update.sequence = i;
        proto::Packet packet = proto::encode(update);
        faulty.sendTo(endpoint, packet.data(), packet.size());
        if (i % 25 == 24) // pace the burst so loopback never drops
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    faulty.flush();

    const net::FaultInjector::Counters &injected =
        faulty.injector().counters();
    uint64_t delivered =
        injected.datagrams - injected.dropped + injected.duplicated;

    // Wait for everything in flight to land.
    for (int i = 0; i < 400; ++i) {
        if (daemon.service().lossStats().received >= delivered)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    daemon.stop();
    server.join();

    proto::SolverService::LossStats detected =
        daemon.service().lossStats();
    EXPECT_EQ(detected.received, delivered);
    EXPECT_EQ(detected.duplicates, injected.duplicated);
    // +-2% of the stream, same bar as the in-process test (loopback
    // itself is lossless at this size and pacing).
    EXPECT_NEAR(static_cast<double>(detected.lost),
                static_cast<double>(injected.dropped),
                0.02 * kUpdates);
}

namespace eintr {

void onSignal(int) {}

} // namespace eintr

TEST(UdpSocketSignals, RecvFromSurvivesEintr)
{
    struct sigaction action{};
    action.sa_handler = eintr::onSignal; // deliberately no SA_RESTART
    struct sigaction previous{};
    ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

    net::UdpSocket receiver;
    receiver.bind(0);
    net::Endpoint to{*net::resolveHost("127.0.0.1"),
                     receiver.localPort()};

    pthread_t main_thread = pthread_self();
    std::thread poker([&] {
        // Interrupt the poll twice, then let the datagram through.
        for (int i = 0; i < 2; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
            pthread_kill(main_thread, SIGUSR1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        net::UdpSocket sender;
        const char payload[] = "ping";
        sender.sendTo(to, payload, sizeof(payload));
    });

    uint8_t buffer[16];
    auto got = receiver.recvFrom(buffer, sizeof(buffer), nullptr, 2.0);
    poker.join();
    ASSERT_TRUE(got.has_value()); // an EINTR must not fake a timeout
    EXPECT_EQ(*got, sizeof("ping"));

    sigaction(SIGUSR1, &previous, nullptr);
}

TEST(UdpSocketSignals, TimeoutStillHonoredUnderSignals)
{
    struct sigaction action{};
    action.sa_handler = eintr::onSignal;
    struct sigaction previous{};
    ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

    net::UdpSocket receiver;
    receiver.bind(0);

    pthread_t main_thread = pthread_self();
    std::thread poker([&] {
        for (int i = 0; i < 3; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            pthread_kill(main_thread, SIGUSR1);
        }
    });

    auto start = std::chrono::steady_clock::now();
    uint8_t buffer[16];
    auto got = receiver.recvFrom(buffer, sizeof(buffer), nullptr, 0.2);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    poker.join();
    EXPECT_FALSE(got.has_value());
    EXPECT_GE(elapsed, 0.19); // waited the full budget, no early exit
    EXPECT_LT(elapsed, 1.0);

    sigaction(SIGUSR1, &previous, nullptr);
}

TEST(UdpTransportResolve, RetriesResolutionOnUse)
{
    sensor::UdpTransport transport("no.such.host.invalid.", 8367, 0.01,
                                   0);
    EXPECT_FALSE(transport.valid());

    // Still unresolvable: the round trip re-attempts and fails cleanly
    // instead of leaving the transport permanently dead.
    proto::SensorRequest request{1, "m", "cpu"};
    EXPECT_FALSE(transport.roundTrip(proto::encode(request)).has_value());
    EXPECT_FALSE(transport.valid());
}

TEST_F(FaultFixture, FiddleStatsCommandReportsCounters)
{
    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service_), "machine1");
    ASSERT_TRUE(client.read("cpu").has_value());

    proto::UtilizationUpdate update;
    update.machine = "machine1";
    update.component = "cpu";
    update.utilization = 0.4;
    update.sequence = 5;
    auto packet = proto::encode(update);
    service_.handlePacket(packet.data(), packet.size());

    auto [ok, message] = client.fiddle("stats");
    EXPECT_TRUE(ok) << message;
    EXPECT_NE(message.find("up=1"), std::string::npos) << message;
    EXPECT_NE(message.find("rd=1"), std::string::npos) << message;
    EXPECT_NE(message.find("lost="), std::string::npos) << message;

    // The paper's CLI prefixes commands with a literal `fiddle`.
    auto [ok2, message2] = client.fiddle("fiddle stats");
    EXPECT_TRUE(ok2) << message2;
    EXPECT_EQ(service_.fiddlesApplied(), 0u); // stats is read-only
}

TEST_F(FaultFixture, PeriodicStatsCoverSequenceGaps)
{
    // Drive updates with a deliberate gap and duplicate; the stats
    // line carried back by `fiddle stats` reflects both.
    for (uint64_t seq : {0ULL, 1ULL, 5ULL, 5ULL, 6ULL}) {
        proto::UtilizationUpdate update;
        update.machine = "machine1";
        update.component = "cpu";
        update.utilization = 0.3;
        update.sequence = seq;
        auto packet = proto::encode(update);
        service_.handlePacket(packet.data(), packet.size());
    }
    proto::SolverService::LossStats loss = service_.lossStats();
    EXPECT_EQ(loss.received, 5u);
    EXPECT_EQ(loss.lost, 3u);       // 2, 3, 4 never arrived
    EXPECT_EQ(loss.duplicates, 1u); // the second 5

    // A late gap-filler converts a loss into a reorder.
    proto::UtilizationUpdate late;
    late.machine = "machine1";
    late.component = "cpu";
    late.utilization = 0.3;
    late.sequence = 3;
    auto packet = proto::encode(late);
    service_.handlePacket(packet.data(), packet.size());
    loss = service_.lossStats();
    EXPECT_EQ(loss.lost, 2u);
    EXPECT_EQ(loss.reordered, 1u);

    std::string line = service_.statsLine();
    EXPECT_NE(line.find("lost=2"), std::string::npos) << line;
    EXPECT_NE(line.find("dup=1"), std::string::npos) << line;
    EXPECT_NE(line.find("ro=1"), std::string::npos) << line;
}

TEST(UdpSocketRebind, RetriesUntilALingeringHolderReleasesThePort)
{
    const uint16_t port =
        static_cast<uint16_t>(45000 + (::getpid() % 10000));

    // A holder *without* SO_REUSEADDR, the worst case a supervised
    // restart can meet: the new daemon's bind gets EADDRINUSE until
    // the old socket goes away.
    int holder = ::socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(holder, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    ASSERT_EQ(::bind(holder, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0)
        << std::strerror(errno);

    std::thread releaser([holder] {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        ::close(holder);
    });

    // bind() must ride out the EADDRINUSE window instead of dying.
    auto start = std::chrono::steady_clock::now();
    net::UdpSocket taker;
    taker.bind(port);
    double waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    releaser.join();
    EXPECT_EQ(taker.localPort(), port);
    EXPECT_GE(waited, 0.3); // it actually had to retry
}

} // namespace
} // namespace mercury
