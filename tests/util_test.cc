/**
 * @file
 * Unit tests for the util substrate: strings, stats, CSV, RNG, flags.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hh"
#include "util/fileio.hh"
#include "util/flags.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/strings.hh"
#include "util/units.hh"

namespace mercury {
namespace {

TEST(Strings, TrimStripsBothEnds)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields)
{
    auto parts = split("a,b,,d", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "d");
}

TEST(Strings, SplitSingleField)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWhitespaceDropsEmpties)
{
    auto parts = splitWhitespace("  a \t b\nc  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-", "--"));
    EXPECT_TRUE(endsWith("file.dot", ".dot"));
    EXPECT_FALSE(endsWith("dot", "file.dot"));
}

TEST(Strings, ParseDoubleAcceptsFullMatchOnly)
{
    EXPECT_DOUBLE_EQ(*parseDouble("3.25"), 3.25);
    EXPECT_DOUBLE_EQ(*parseDouble(" -1e3 "), -1000.0);
    EXPECT_FALSE(parseDouble("3.25x").has_value());
    EXPECT_FALSE(parseDouble("").has_value());
    EXPECT_FALSE(parseDouble("abc").has_value());
}

TEST(Strings, ParseIntAndBool)
{
    EXPECT_EQ(*parseInt("42"), 42);
    EXPECT_EQ(*parseInt("-7"), -7);
    EXPECT_FALSE(parseInt("4.2").has_value());
    EXPECT_TRUE(*parseBool("TRUE"));
    EXPECT_FALSE(*parseBool("off"));
    EXPECT_FALSE(parseBool("maybe").has_value());
}

TEST(Strings, FormatMatchesPrintf)
{
    EXPECT_EQ(format("%d-%s-%.1f", 3, "x", 2.5), "3-x-2.5");
}

TEST(Units, CfmRoundTrip)
{
    double cfm = 38.6;
    EXPECT_NEAR(units::m3PerSToCfm(units::cfmToM3PerS(cfm)), cfm, 1e-9);
}

TEST(Units, Table1FanMassFlow)
{
    // 38.6 CFM of air is about 21.6 grams per second.
    double kg_per_s = units::cfmToKgPerS(38.6);
    EXPECT_NEAR(kg_per_s, 0.0216, 0.0005);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats stats;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeEqualsCombinedStream)
{
    RunningStats a;
    RunningStats b;
    RunningStats whole;
    for (int i = 0; i < 50; ++i) {
        double v = std::sin(i * 0.7) * 10.0;
        (i % 2 ? a : b).add(v);
        whole.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(TimeSeries, InterpolatesLinearly)
{
    TimeSeries ts("t");
    ts.add(0.0, 10.0);
    ts.add(10.0, 20.0);
    EXPECT_DOUBLE_EQ(ts.sampleAt(5.0), 15.0);
    EXPECT_DOUBLE_EQ(ts.sampleAt(-1.0), 10.0); // clamped
    EXPECT_DOUBLE_EQ(ts.sampleAt(99.0), 20.0); // clamped
}

TEST(TimeSeries, MaxAbsErrorAgainstShiftedCopy)
{
    TimeSeries a("a");
    TimeSeries b("b");
    for (int i = 0; i <= 100; ++i) {
        a.add(i, std::sin(i * 0.1));
        b.add(i, std::sin(i * 0.1) + 0.5);
    }
    EXPECT_NEAR(a.maxAbsError(b), 0.5, 1e-12);
    EXPECT_NEAR(a.meanAbsError(b), 0.5, 1e-12);
}

TEST(TimeSeries, FirstTimeAbove)
{
    TimeSeries ts("t");
    ts.add(0.0, 1.0);
    ts.add(5.0, 3.0);
    ts.add(10.0, 7.0);
    EXPECT_DOUBLE_EQ(ts.firstTimeAbove(3.0), 5.0);
    EXPECT_DOUBLE_EQ(ts.firstTimeAbove(100.0), -1.0);
}

TEST(Histogram, QuantileOfUniformFill)
{
    Histogram hist(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        hist.add(i + 0.5);
    EXPECT_NEAR(hist.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(hist.quantile(0.99), 99.0, 2.0);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(1.0);
    a.add(2.0);
    b.add(2.0);
    b.add(9.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.binAt(2), 2u); // both 2.0 samples
    EXPECT_EQ(a.binAt(9), 1u);
}

TEST(Histogram, MergeShapeMismatchPanics)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 20);
    EXPECT_DEATH(a.merge(b), "shape mismatch");
}

TEST(Csv, RowStringsEscapes)
{
    std::ostringstream out;
    CsvWriter writer(out, {"name", "value"});
    writer.rowStrings({"a,b", "plain"});
    EXPECT_EQ(out.str(), "name,value\n\"a,b\",plain\n");
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram hist(0.0, 10.0, 10);
    hist.add(-5.0);
    hist.add(50.0);
    EXPECT_EQ(hist.binAt(0), 1u);
    EXPECT_EQ(hist.binAt(9), 1u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntCoversBothEndpoints)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == 0;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(42);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(stats.mean(), 5.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(9);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 0.25, 0.02);
}

TEST(Csv, EscapesSpecialCells)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WriterEmitsHeaderAndRows)
{
    std::ostringstream out;
    CsvWriter writer(out, {"time_s", "temp_c"});
    writer.row({1.0, 21.5});
    writer.row({2.0, 22.0});
    EXPECT_EQ(out.str(), "time_s,temp_c\n1,21.5\n2,22\n");
    EXPECT_EQ(writer.rowsWritten(), 2u);
}

TEST(Csv, AlignedSeriesInterpolatesSecondColumn)
{
    TimeSeries a("a");
    a.add(0.0, 1.0);
    a.add(2.0, 3.0);
    TimeSeries b("b");
    b.add(0.0, 10.0);
    b.add(4.0, 30.0);
    std::ostringstream out;
    writeAlignedSeries(out, {&a, &b});
    EXPECT_EQ(out.str(), "time_s,a,b\n0,1,10\n2,3,20\n");
}

TEST(Flags, ParsesAllForms)
{
    FlagSet flags("prog", "test");
    flags.defineString("name", "default", "a name");
    flags.defineDouble("ratio", 1.5, "a ratio");
    flags.defineInt("count", 10, "a count");
    flags.defineBool("verbose", false, "chatty");
    const char *argv[] = {"prog", "--name", "mercury", "--ratio=2.5",
                          "--verbose", "pos1"};
    ASSERT_TRUE(flags.parse(6, argv));
    EXPECT_EQ(flags.getString("name"), "mercury");
    EXPECT_DOUBLE_EQ(flags.getDouble("ratio"), 2.5);
    EXPECT_EQ(flags.getInt("count"), 10);
    EXPECT_TRUE(flags.getBool("verbose"));
    EXPECT_TRUE(flags.provided("name"));
    EXPECT_FALSE(flags.provided("count"));
    ASSERT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(FlagsDeathTest, RejectsMalformedDoubles)
{
    FlagSet flags("prog", "test");
    flags.defineDouble("ratio", 1.5, "a ratio");
    {
        const char *argv[] = {"prog", "--ratio=10x"};
        EXPECT_DEATH(flags.parse(2, argv),
                     "trailing garbage after '10'");
    }
    {
        const char *argv[] = {"prog", "--ratio=abc"};
        EXPECT_DEATH(flags.parse(2, argv), "not a number");
    }
    {
        const char *argv[] = {"prog", "--ratio="};
        EXPECT_DEATH(flags.parse(2, argv), "empty value");
    }
    {
        const char *argv[] = {"prog", "--ratio=1e999"};
        EXPECT_DEATH(flags.parse(2, argv),
                     "out of range for a double");
    }
}

TEST(FlagsDeathTest, RejectsNonFiniteDoubles)
{
    // strtod happily parses "nan" and "inf"; a NaN threshold would
    // silently disable every comparison against it downstream.
    FlagSet flags("prog", "test");
    flags.defineDouble("ratio", 1.5, "a ratio");
    {
        const char *argv[] = {"prog", "--ratio=nan"};
        EXPECT_DEATH(flags.parse(2, argv), "must be finite");
    }
    {
        const char *argv[] = {"prog", "--ratio=inf"};
        EXPECT_DEATH(flags.parse(2, argv), "must be finite");
    }
    {
        const char *argv[] = {"prog", "--ratio=-inf"};
        EXPECT_DEATH(flags.parse(2, argv), "must be finite");
    }
}

TEST(FlagsDeathTest, RejectsMalformedInts)
{
    FlagSet flags("prog", "test");
    flags.defineInt("count", 10, "a count");
    {
        const char *argv[] = {"prog", "--count=7.5"};
        EXPECT_DEATH(flags.parse(2, argv),
                     "trailing garbage after '7'");
    }
    {
        const char *argv[] = {"prog", "--count=99999999999999999999"};
        EXPECT_DEATH(flags.parse(2, argv),
                     "out of range for a 64-bit integer");
    }
    {
        const char *argv[] = {"prog", "--count=x"};
        EXPECT_DEATH(flags.parse(2, argv), "not an integer");
    }
}

TEST(FileIo, AtomicWriteReplacesWholeFiles)
{
    const std::string path =
        "/tmp/mercury_util_test.atomic." + std::to_string(::getpid());
    std::remove(path.c_str());

    std::string error;
    ASSERT_TRUE(atomicWriteFile(path, "8367\n", &error)) << error;
    {
        std::ifstream in(path);
        std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
        EXPECT_EQ(content, "8367\n");
    }

    // Overwrite: readers see old or new, and no .tmp litter remains.
    ASSERT_TRUE(atomicWriteFile(path, "9412\n", &error)) << error;
    {
        std::ifstream in(path);
        std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
        EXPECT_EQ(content, "9412\n");
    }
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());

    // A failure leaves the destination untouched.
    EXPECT_FALSE(atomicWriteFile("/nonexistent-dir/nope/file", "x",
                                 &error));
    EXPECT_FALSE(error.empty());

    std::remove(path.c_str());
}

TEST(Flags, HelpReturnsFalse)
{
    FlagSet flags("prog", "test");
    flags.defineInt("n", 1, "num");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(flags.parse(2, argv));
}

} // namespace
} // namespace mercury
