/**
 * @file
 * ProcSource against procfs fixtures: exact utilization math for
 * known /proc deltas, partition/loopback filtering, malformed-line
 * tolerance.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "monitor/source.hh"

namespace mercury {
namespace monitor {
namespace {

namespace fs = std::filesystem;

class ProcFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::temp_directory_path() /
                ("mercury_proc_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
        fs::create_directories(root_ / "net");
    }

    void
    TearDown() override
    {
        fs::remove_all(root_);
    }

    void
    writeProc(uint64_t cpu_busy, uint64_t cpu_idle, uint64_t disk_ms,
              uint64_t net_bytes)
    {
        // /proc/stat: user nice system idle iowait irq softirq steal.
        std::ofstream stat(root_ / "stat");
        stat << "cpu  " << cpu_busy << " 0 0 " << cpu_idle
             << " 0 0 0 0 0 0\n"
             << "cpu0 " << cpu_busy << " 0 0 " << cpu_idle
             << " 0 0 0 0 0 0\n";

        // /proc/diskstats: field 13 (1-based) is ms doing I/O.
        std::ofstream disk(root_ / "diskstats");
        disk << "   8       0 sda 100 0 0 0 50 0 0 0 0 " << disk_ms
             << " 0\n"
             << "   8       1 sda1 100 0 0 0 50 0 0 0 0 999999 0\n"
             << "   7       0 loop0 1 0 0 0 1 0 0 0 0 888888 0\n"
             << "   1       0 ram0 1 0 0 0 1 0 0 0 0 777777 0\n";

        // /proc/net/dev: rx bytes is field 1, tx bytes field 9.
        std::ofstream net(root_ / "net" / "dev");
        net << "Inter-|   Receive    |  Transmit\n"
            << " face |bytes packets |bytes packets\n"
            << "    lo: 123456 10 0 0 0 0 0 0 123456 10 0 0 0 0 0 0\n"
            << "  eth0: " << net_bytes / 2
            << " 10 0 0 0 0 0 0 " << net_bytes - net_bytes / 2
            << " 10 0 0 0 0 0 0\n";
    }

    fs::path root_;
};

TEST_F(ProcFixture, ComputesExactDeltas)
{
    writeProc(/*busy=*/1000, /*idle=*/9000, /*disk_ms=*/5000,
              /*net=*/1000000);
    ProcSource source(/*nic=*/1e6, root_.string());
    ASSERT_TRUE(source.available());
    auto first = source.sample(0.0);
    ASSERT_EQ(first.size(), 3u);

    // One second later: +30 busy ticks of +100 total (30% CPU),
    // +250 ms of disk I/O (25%), +500000 bytes on a 1 MB/s NIC (50%).
    writeProc(1030, 9070, 5250, 1500000);
    auto second = source.sample(1.0);
    ASSERT_EQ(second.size(), 3u);
    EXPECT_EQ(second[0].component, "cpu");
    EXPECT_NEAR(second[0].utilization, 0.30, 1e-9);
    EXPECT_EQ(second[1].component, "disk");
    EXPECT_NEAR(second[1].utilization, 0.25, 1e-9);
    EXPECT_EQ(second[2].component, "net");
    EXPECT_NEAR(second[2].utilization, 0.50, 1e-9);
}

TEST_F(ProcFixture, IgnoresPartitionsLoopRamAndLoopback)
{
    // The fixture's sda1/loop0/ram0 rows carry huge io-ms values and
    // lo carries bytes; none of them may leak into the utilizations.
    writeProc(100, 900, 1000, 1000);
    ProcSource source(1e6, root_.string());
    source.sample(0.0);
    writeProc(100, 1000, 1000, 1000); // nothing moved
    auto sample = source.sample(1.0);
    EXPECT_NEAR(sample[1].utilization, 0.0, 1e-9);
    EXPECT_NEAR(sample[2].utilization, 0.0, 1e-9);
}

TEST_F(ProcFixture, SaturatesAtOne)
{
    writeProc(0, 1000, 0, 0);
    ProcSource source(1e3, root_.string()); // tiny NIC
    source.sample(0.0);
    writeProc(200, 1000, 5000, 1000000); // all overloaded
    auto sample = source.sample(1.0);
    for (const Reading &reading : sample) {
        EXPECT_GE(reading.utilization, 0.0);
        EXPECT_LE(reading.utilization, 1.0);
    }
    EXPECT_NEAR(sample[0].utilization, 1.0, 1e-9);
    EXPECT_NEAR(sample[1].utilization, 1.0, 1e-9);
    EXPECT_NEAR(sample[2].utilization, 1.0, 1e-9);
}

TEST_F(ProcFixture, MissingRootReportsUnavailable)
{
    ProcSource source(1e6, (root_ / "nope").string());
    EXPECT_FALSE(source.available());
    EXPECT_TRUE(source.sample(0.0).empty());
}

TEST_F(ProcFixture, MalformedLinesAreTolerated)
{
    writeProc(100, 900, 100, 100);
    {
        std::ofstream stat(root_ / "stat", std::ios::app);
        stat << "garbage line with words\n";
        std::ofstream disk(root_ / "diskstats", std::ios::app);
        disk << "short row\n";
        std::ofstream net(root_ / "net" / "dev", std::ios::app);
        net << "no colon here\n";
    }
    ProcSource source(1e6, root_.string());
    ASSERT_TRUE(source.available());
    auto sample = source.sample(0.0);
    EXPECT_EQ(sample.size(), 3u); // survives the junk
}

} // namespace
} // namespace monitor
} // namespace mercury
