/**
 * @file
 * Tests for the Section 7 / Section 4.3 extensions: variable-speed
 * fans, CPU-local DVFS, content-aware dispatch and the two-stage
 * Freon policy.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cluster/dvfs.hh"
#include "core/fan.hh"
#include "core/thermal_graph.hh"
#include "freon/controller.hh"
#include "freon/experiment.hh"
#include "lb/load_balancer.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace {

TEST(FanCurve, LinearRampBetweenSetpoints)
{
    core::FanCurve curve;
    curve.lowTemperature = 40.0;
    curve.highTemperature = 60.0;
    curve.minCfm = 10.0;
    curve.maxCfm = 50.0;
    EXPECT_DOUBLE_EQ(curve.cfmFor(20.0), 10.0);
    EXPECT_DOUBLE_EQ(curve.cfmFor(40.0), 10.0);
    EXPECT_DOUBLE_EQ(curve.cfmFor(50.0), 30.0);
    EXPECT_DOUBLE_EQ(curve.cfmFor(60.0), 50.0);
    EXPECT_DOUBLE_EQ(curve.cfmFor(99.0), 50.0);
}

TEST(FanController, SpeedsUpWithLoadAndCoolsTheMachine)
{
    core::ThermalGraph fixed(core::table1Server("fixed"));
    core::ThermalGraph managed(core::table1Server("managed"));

    core::FanCurve curve;
    curve.lowTemperature = 35.0;
    curve.highTemperature = 60.0;
    curve.minCfm = 38.6; // idle speed = the fixed machine's speed
    curve.maxCfm = 90.0;
    core::FanController fan(managed, "cpu", curve);
    double idle_cfm = fan.currentCfm();

    fixed.setUtilization("cpu", 1.0);
    managed.setUtilization("cpu", 1.0);
    for (int i = 0; i < 20000; ++i) {
        fixed.step(1.0);
        managed.step(1.0);
        fan.update();
    }
    EXPECT_GT(fan.currentCfm(), idle_cfm + 10.0); // fan ramped up
    EXPECT_LT(managed.temperature("cpu"),
              fixed.temperature("cpu") - 3.0); // and it helped
}

TEST(FanController, HysteresisSuppressesChatter)
{
    core::ThermalGraph graph(core::table1Server("srv"));
    core::FanCurve curve;
    curve.hysteresisCfm = 5.0;
    core::FanController fan(graph, "cpu", curve);
    double before = fan.currentCfm();
    // A tiny temperature wiggle must not change the speed.
    graph.setTemperature("cpu", graph.temperature("cpu") + 0.5);
    fan.update();
    EXPECT_DOUBLE_EQ(fan.currentCfm(), before);
}

struct DvfsRig
{
    sim::Simulator simulator;
    cluster::ServerMachine machine{simulator, "m1"};
    double temperature = 50.0;
    std::vector<double> applied;
    std::unique_ptr<cluster::DvfsGovernor> governor;

    explicit DvfsRig(cluster::DvfsConfig config = {})
    {
        governor = std::make_unique<cluster::DvfsGovernor>(
            simulator, machine, [this] { return temperature; },
            [this](double f) { applied.push_back(f); }, config);
    }
};

TEST(DvfsGovernor, StartsAtTopFrequency)
{
    DvfsRig rig;
    EXPECT_DOUBLE_EQ(rig.governor->frequency(), 1.0);
    EXPECT_DOUBLE_EQ(rig.machine.cpuSpeed(), 1.0);
}

TEST(DvfsGovernor, StepsDownWhenHotAndBackUpWhenCool)
{
    DvfsRig rig;
    rig.temperature = 80.0; // above the 74 trigger
    rig.governor->evaluate();
    EXPECT_DOUBLE_EQ(rig.governor->frequency(), 0.9);
    rig.governor->evaluate();
    rig.governor->evaluate();
    rig.governor->evaluate(); // bottom of the ladder
    EXPECT_DOUBLE_EQ(rig.governor->frequency(), 0.6);
    rig.governor->evaluate(); // clamped
    EXPECT_DOUBLE_EQ(rig.governor->frequency(), 0.6);
    EXPECT_EQ(rig.governor->throttleEvents(), 3u);

    rig.temperature = 60.0; // below the 70 release
    rig.governor->evaluate();
    EXPECT_DOUBLE_EQ(rig.governor->frequency(), 0.75);
}

TEST(DvfsGovernor, DeadBandHolds)
{
    DvfsRig rig;
    rig.temperature = 72.0; // between release (70) and trigger (74)
    rig.governor->evaluate();
    EXPECT_DOUBLE_EQ(rig.governor->frequency(), 1.0);
}

TEST(DvfsGovernor, ThrottlingInflatesServiceTime)
{
    DvfsRig rig;
    rig.temperature = 99.0;
    for (int i = 0; i < 4; ++i)
        rig.governor->evaluate();
    ASSERT_DOUBLE_EQ(rig.machine.cpuSpeed(), 0.6);

    cluster::Request request;
    request.id = 1;
    request.cpuSeconds = 0.6;
    rig.machine.offer(request);
    rig.simulator.runToCompletion();
    // 0.6 s of work at 0.6x speed takes a full second.
    EXPECT_EQ(rig.simulator.now(), sim::seconds(1.0));
}

TEST(ContentAware, DynamicRequestsAvoidFlaggedServer)
{
    sim::Simulator simulator;
    cluster::ServerConfig server_config;
    server_config.maxQueueSeconds = 1e9;
    server_config.maxConnections = 100000;
    cluster::ServerMachine m1(simulator, "m1", server_config);
    cluster::ServerMachine m2(simulator, "m2", server_config);
    lb::LoadBalancer balancer;
    balancer.addServer(&m1);
    balancer.addServer(&m2);
    balancer.setDynamicContentAllowed("m1", false);

    int dynamic_on_m1 = 0;
    m1.setCompletionFn([&](const cluster::ServerMachine &,
                           const cluster::Request &request,
                           cluster::RequestOutcome) {
        if (request.dynamic)
            ++dynamic_on_m1;
    });
    for (int i = 0; i < 40; ++i) {
        cluster::Request request;
        request.id = i;
        request.dynamic = (i % 2 == 0);
        request.cpuSeconds = 0.001;
        balancer.submit(request);
    }
    simulator.runToCompletion();
    // Every dynamic request stayed off m1; static ones still flowed
    // there (WLC even prefers it, since it holds fewer connections).
    EXPECT_EQ(dynamic_on_m1, 0);
    EXPECT_GT(balancer.dispatchedTo("m1"), 0u);
    EXPECT_EQ(balancer.dispatchedTo("m1") + balancer.dispatchedTo("m2"),
              40u);
}

TEST(ContentAware, RestrictionWaivedWhenNoOtherServer)
{
    sim::Simulator simulator;
    cluster::ServerMachine only(simulator, "m1");
    lb::LoadBalancer balancer;
    balancer.addServer(&only);
    balancer.setDynamicContentAllowed("m1", false);

    cluster::Request request;
    request.id = 1;
    request.dynamic = true;
    request.cpuSeconds = 0.01;
    balancer.submit(request);
    EXPECT_EQ(balancer.activeConnections("m1"), 1); // served anyway
    EXPECT_EQ(balancer.dropped(), 0u);
}

TEST(TwoStagePolicy, FirstDivertsDynamicThenAdjustsWeights)
{
    sim::Simulator simulator;
    cluster::ServerConfig server_config;
    server_config.maxQueueSeconds = 1e9;
    std::vector<std::unique_ptr<cluster::ServerMachine>> machines;
    lb::LoadBalancer balancer;
    for (int i = 0; i < 4; ++i) {
        machines.push_back(std::make_unique<cluster::ServerMachine>(
            simulator, "m" + std::to_string(i + 1), server_config));
        balancer.addServer(machines.back().get());
    }
    freon::FreonController::Options options;
    options.policy = freon::PolicyKind::FreonTwoStage;
    freon::FreonController controller(simulator, balancer, options);
    controller.start();
    simulator.runUntil(sim::seconds(30));

    freon::TempdReport hot;
    hot.machine = "m1";
    hot.kind = freon::TempdReport::Kind::Hot;
    hot.output = 1.0;

    // Stage 1: content diversion only, weights untouched.
    controller.onReport(hot);
    EXPECT_FALSE(balancer.dynamicContentAllowed("m1"));
    EXPECT_EQ(balancer.weight("m1"), lb::LoadBalancer::kDefaultWeight);

    // Stage 2: still hot a period later -> the base actuation.
    controller.onReport(hot);
    EXPECT_LT(balancer.weight("m1"), lb::LoadBalancer::kDefaultWeight);
    EXPECT_GT(balancer.connectionCap("m1"), 0);

    // Cool lifts everything, including the content restriction.
    freon::TempdReport cool;
    cool.machine = "m1";
    cool.kind = freon::TempdReport::Kind::Cool;
    controller.onReport(cool);
    EXPECT_TRUE(balancer.dynamicContentAllowed("m1"));
    EXPECT_EQ(balancer.weight("m1"), lb::LoadBalancer::kDefaultWeight);
    EXPECT_EQ(balancer.connectionCap("m1"), 0);
}

TEST(ExperimentExtensions, DvfsAloneControlsTemperature)
{
    freon::ExperimentConfig config;
    config.policy = freon::PolicyKind::None;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();
    config.enableDvfs = true;

    freon::ExperimentResult result = freon::runExperiment(config);
    EXPECT_GT(result.throttleEvents, 0u);
    // The governor keeps the hot CPU near its trigger...
    EXPECT_LT(result.peakCpuTemperature.at("m1"), 76.5);
    // ...by running it slower (frequency dipped below nominal).
    EXPECT_LT(result.cpuFrequency.at("m1").minValue(), 1.0);
}

TEST(ExperimentExtensions, VariableFansLowerHotMachineTemperature)
{
    freon::ExperimentConfig config;
    config.policy = freon::PolicyKind::None;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();

    freon::ExperimentResult fixed = freon::runExperiment(config);

    config.enableVariableFans = true;
    config.fanCurve.lowTemperature = 40.0;
    config.fanCurve.highTemperature = 70.0;
    config.fanCurve.minCfm = 38.6;
    config.fanCurve.maxCfm = 90.0;
    freon::ExperimentResult fans = freon::runExperiment(config);

    EXPECT_LT(fans.peakCpuTemperature.at("m1"),
              fixed.peakCpuTemperature.at("m1") - 2.0);
    EXPECT_GT(fans.fanCfm.at("m1").maxValue(), 50.0);
    EXPECT_NEAR(fans.fanCfm.at("m4").minValue(), 38.6, 1.0);
}

TEST(ExperimentExtensions, TwoStageServesMoreCgiOnHotServerThanBase)
{
    freon::ExperimentConfig config;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();

    config.policy = freon::PolicyKind::FreonTwoStage;
    freon::ExperimentResult two_stage = freon::runExperiment(config);

    // Same safety story as the base policy: nothing dropped, nothing
    // red-lined.
    EXPECT_EQ(two_stage.dropped, 0u);
    EXPECT_EQ(two_stage.serversTurnedOff, 0u);
    EXPECT_LT(two_stage.peakCpuTemperature.at("m1"), 76.0);
}

} // namespace
} // namespace mercury
