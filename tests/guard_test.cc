/**
 * @file
 * Unit tests for the sensor trust layer: classification, the health
 * state machine and its hysteresis, substitution policies, the online
 * model, sensor-level fault injection, and the `fiddle guard`
 * introspection served by SolverService.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/solver.hh"
#include "guard/sensor_guard.hh"
#include "net/faults.hh"
#include "proto/solver_service.hh"
#include "sensor/client.hh"
#include "sensor/transport.hh"
#include "util/strings.hh"

namespace mercury {
namespace {

using guard::Classification;
using guard::GuardConfig;
using guard::HealthState;
using guard::SensorGuard;
using guard::TrustedSample;

TEST(Guard, HealthySamplesPassRawAndTrusted)
{
    SensorGuard guard;
    for (int i = 0; i < 20; ++i) {
        TrustedSample sample =
            guard.filter("m1.cpu", i * 1.0, 40.0 + 0.1 * i);
        ASSERT_TRUE(sample.hasValue);
        EXPECT_TRUE(sample.trusted);
        EXPECT_FALSE(sample.substituted);
        EXPECT_DOUBLE_EQ(sample.value, 40.0 + 0.1 * i);
        EXPECT_EQ(sample.state, HealthState::Healthy);
        EXPECT_EQ(sample.reason, Classification::Ok);
    }
    EXPECT_EQ(guard.anomaliesTotal(), 0u);
    EXPECT_EQ(guard.substitutionsTotal(), 0u);
    EXPECT_EQ(guard.samplesTotal(), 20u);
    EXPECT_EQ(guard.streamCount(), 1u);
}

TEST(Guard, OutOfRangeIsSubstitutedFromHistory)
{
    SensorGuard guard;
    for (int i = 0; i < 10; ++i)
        guard.filter("s", i * 1.0, 42.0);
    TrustedSample bad = guard.filter("s", 10.0, 500.0);
    EXPECT_EQ(bad.reason, Classification::OutOfRange);
    EXPECT_FALSE(bad.trusted);
    EXPECT_TRUE(bad.substituted);
    ASSERT_TRUE(bad.hasValue);
    EXPECT_NEAR(bad.value, 42.0, 1.0); // hold-last, not the lie
    EXPECT_EQ(bad.state, HealthState::Suspect);
    EXPECT_EQ(guard.anomaliesTotal(), 1u);
}

TEST(Guard, OutOfRangeWithNoHistoryClampsIntoRange)
{
    SensorGuard guard;
    TrustedSample first = guard.filter("s", 0.0, 500.0);
    EXPECT_EQ(first.reason, Classification::OutOfRange);
    ASSERT_TRUE(first.hasValue);
    EXPECT_TRUE(first.substituted);
    EXPECT_DOUBLE_EQ(first.value, guard.config().maxValue);

    TrustedSample low = guard.filter("s2", 0.0, -300.0);
    ASSERT_TRUE(low.hasValue);
    EXPECT_DOUBLE_EQ(low.value, guard.config().minValue);
}

TEST(Guard, RateSpikeDetected)
{
    SensorGuard guard; // maxRatePerSecond = 2.0
    guard.filter("s", 0.0, 40.0);
    TrustedSample spike = guard.filter("s", 1.0, 50.0);
    EXPECT_EQ(spike.reason, Classification::RateSpike);
    EXPECT_TRUE(spike.substituted);

    // The same step over a long enough interval is plausible.
    SensorGuard slow;
    slow.filter("s", 0.0, 40.0);
    TrustedSample gentle = slow.filter("s", 10.0, 50.0);
    EXPECT_EQ(gentle.reason, Classification::Ok);
}

TEST(Guard, DropoutSubstitutesFromLastGood)
{
    SensorGuard guard;
    for (int i = 0; i < 5; ++i)
        guard.filter("s", i * 1.0, 45.0);
    TrustedSample gone = guard.filter("s", 5.0, std::nullopt);
    EXPECT_EQ(gone.reason, Classification::Dropout);
    ASSERT_TRUE(gone.hasValue);
    EXPECT_TRUE(gone.substituted);
    EXPECT_NEAR(gone.value, 45.0, 1.0);

    // A dropout on a stream with no history has nothing to offer.
    TrustedSample empty = guard.filter("fresh", 0.0, std::nullopt);
    EXPECT_FALSE(empty.hasValue);
}

TEST(Guard, StateMachineQuarantineAndRecovery)
{
    SensorGuard guard; // 3 anomalies condemn; 120 s minimum; 3 + 3 out
    double t = 0.0;
    for (int i = 0; i < 10; ++i, t += 1.0)
        guard.filter("s", t, 40.0);

    // Three straight lies condemn the stream.
    EXPECT_EQ(guard.filter("s", t, 500.0).state, HealthState::Suspect);
    t += 1.0;
    EXPECT_EQ(guard.filter("s", t, 500.0).state, HealthState::Suspect);
    t += 1.0;
    EXPECT_EQ(guard.filter("s", t, 500.0).state,
              HealthState::Quarantined);
    double quarantined_at = t;
    EXPECT_EQ(guard.quarantinesTotal(), 1u);
    EXPECT_DOUBLE_EQ(guard.quarantinedAt("s"), quarantined_at);
    t += 1.0;

    // Sane readings before quarantineMinSeconds do not restore trust.
    for (int i = 0; i < 20; ++i, t += 1.0) {
        TrustedSample sample = guard.filter("s", t, 40.0);
        EXPECT_EQ(sample.state, HealthState::Quarantined);
        EXPECT_TRUE(sample.substituted);
        EXPECT_FALSE(sample.trusted);
    }

    // After the minimum, three sane samples start probation...
    t = quarantined_at + guard.config().quarantineMinSeconds + 1.0;
    guard.filter("s", t, 40.0);
    guard.filter("s", t + 1.0, 40.0);
    TrustedSample probation = guard.filter("s", t + 2.0, 40.0);
    EXPECT_EQ(probation.state, HealthState::Recovering);
    EXPECT_FALSE(probation.trusted); // on probation, not yet trusted

    // ...and three more restore full trust.
    guard.filter("s", t + 3.0, 40.0);
    guard.filter("s", t + 4.0, 40.0);
    TrustedSample healed = guard.filter("s", t + 5.0, 40.0);
    EXPECT_EQ(healed.state, HealthState::Healthy);
    EXPECT_TRUE(healed.trusted);
    EXPECT_EQ(guard.recoveriesTotal(), 1u);
}

TEST(Guard, SuspectClearsWithoutQuarantine)
{
    // A dropout is the anomaly here on purpose: it does not pollute
    // the rate-of-change history the way an absurd value would, so
    // the follow-up samples are genuinely clean.
    SensorGuard guard;
    double t = 0.0;
    for (int i = 0; i < 5; ++i, t += 1.0)
        guard.filter("s", t, 40.0);
    guard.filter("s", t, std::nullopt); // one isolated dropout
    t += 1.0;
    EXPECT_EQ(guard.state("s"), HealthState::Suspect);
    for (int i = 0; i < guard.config().suspectClearSamples; ++i, t += 1.0)
        guard.filter("s", t, 40.0);
    EXPECT_EQ(guard.state("s"), HealthState::Healthy);
    EXPECT_EQ(guard.quarantinesTotal(), 0u);
}

TEST(Guard, RelapseInRecoveryReQuarantines)
{
    GuardConfig config;
    config.quarantineMinSeconds = 10.0;
    SensorGuard guard(config);
    double t = 0.0;
    for (int i = 0; i < 5; ++i, t += 1.0)
        guard.filter("s", t, 40.0);
    for (int i = 0; i < 3; ++i, t += 1.0)
        guard.filter("s", t, std::nullopt); // sustained dropout
    ASSERT_EQ(guard.state("s"), HealthState::Quarantined);
    t += config.quarantineMinSeconds;
    for (int i = 0; i < 3; ++i, t += 1.0)
        guard.filter("s", t, 40.0);
    ASSERT_EQ(guard.state("s"), HealthState::Recovering);
    guard.filter("s", t, 500.0); // relapse: back to quarantine at once
    EXPECT_EQ(guard.state("s"), HealthState::Quarantined);
    EXPECT_EQ(guard.quarantinesTotal(), 2u);
}

TEST(Guard, StuckAtFiresOnlyWhenPredictionMoves)
{
    // External predictions isolate the detector from the online model:
    // the reading froze at 35 while the model says 30 <-> 40.
    SensorGuard guard;
    double t = 0.0;
    int stuck_window = guard.config().stuckWindow;
    bool fired = false;
    for (int i = 0; i < 3 * stuck_window; ++i, t += 10.0) {
        double predicted = i % 2 == 0 ? 30.0 : 40.0;
        TrustedSample sample =
            guard.filter("s", t, 35.0, std::nullopt, predicted);
        if (sample.reason == Classification::StuckAt) {
            fired = true;
            break;
        }
    }
    EXPECT_TRUE(fired);

    // A genuinely steady sensor (steady prediction) is never flagged.
    SensorGuard steady;
    for (int i = 0; i < 4 * stuck_window; ++i) {
        TrustedSample sample =
            steady.filter("s", i * 10.0, 35.0, std::nullopt, 35.0);
        EXPECT_EQ(sample.reason, Classification::Ok) << i;
    }
    EXPECT_EQ(steady.anomaliesTotal(), 0u);
}

TEST(Guard, ModelDivergenceAfterWarmup)
{
    SensorGuard guard; // tolerance 10, warmup 5
    double t = 0.0;
    for (int i = 0; i < 8; ++i, t += 10.0)
        guard.filter("s", t, 30.0);
    // 45 is in range and slow enough, but 15 degC from the model.
    TrustedSample diverged = guard.filter("s", t, 45.0);
    EXPECT_EQ(diverged.reason, Classification::ModelDivergence);
    EXPECT_TRUE(diverged.substituted);
    EXPECT_NEAR(diverged.value, 30.0, 2.0);
}

TEST(Guard, HoldLastDecayRelaxesTowardModel)
{
    GuardConfig config;
    config.holdDecaySeconds = 100.0;
    config.quarantineMinSeconds = 1e9; // stay quarantined
    SensorGuard guard(config);
    double t = 0.0;
    for (int i = 0; i < 10; ++i, t += 1.0)
        guard.filter("s", t, 50.0);
    for (int i = 0; i < 3; ++i, t += 1.0)
        guard.filter("s", t, 500.0);
    ASSERT_EQ(guard.state("s"), HealthState::Quarantined);

    // Substitutes decay from the last good reading (50) toward the
    // model estimate (~50 too here), so they stay near 50; with an
    // external prediction of 20 the substitute must move toward it.
    TrustedSample early =
        guard.filter("s", t, std::nullopt, std::nullopt, 20.0);
    TrustedSample late = guard.filter("s", t + 400.0, std::nullopt,
                                      std::nullopt, 20.0);
    ASSERT_TRUE(early.hasValue);
    ASSERT_TRUE(late.hasValue);
    EXPECT_GT(early.value, late.value); // decaying toward 20
    EXPECT_GT(early.value, 20.0);
    EXPECT_NEAR(late.value, 20.0, 2.0);
}

TEST(Guard, ModelEstimatePolicySubstitutesPrediction)
{
    GuardConfig config;
    config.substitution = guard::SubstitutionPolicy::ModelEstimate;
    SensorGuard guard(config);
    double t = 0.0;
    for (int i = 0; i < 10; ++i, t += 1.0)
        guard.filter("s", t, 50.0);
    TrustedSample sub =
        guard.filter("s", t, 500.0, std::nullopt, 33.0);
    ASSERT_TRUE(sub.hasValue);
    EXPECT_DOUBLE_EQ(sub.value, 33.0);
}

TEST(Guard, UtilizationProfileAcceptsSteps)
{
    SensorGuard guard(GuardConfig::utilizationProfile());
    // Load may step 0 -> 1 instantly and has no model; only range and
    // stuck-at (vs. an explicit prediction) apply.
    double t = 0.0;
    for (int i = 0; i < 20; ++i, t += 1.0) {
        TrustedSample sample =
            guard.filter("m1.cpu", t, i % 2 == 0 ? 0.05 : 0.95);
        EXPECT_EQ(sample.reason, Classification::Ok) << i;
    }
    TrustedSample over = guard.filter("m1.cpu", t, 1.4);
    EXPECT_EQ(over.reason, Classification::OutOfRange);
}

TEST(Guard, IntrospectionSurfacesState)
{
    SensorGuard guard;
    guard.filter("m1.cpu", 0.0, 40.0);
    guard.filter("m2.cpu", 0.0, 500.0);
    EXPECT_EQ(guard.state("m1.cpu"), HealthState::Healthy);
    EXPECT_EQ(guard.state("m2.cpu"), HealthState::Suspect);
    EXPECT_EQ(guard.state("never-seen"), HealthState::Healthy);
    EXPECT_EQ(guard.lastReason("m2.cpu"), Classification::OutOfRange);

    auto statuses = guard.streamStatuses();
    ASSERT_EQ(statuses.size(), 2u);
    EXPECT_EQ(statuses[0].stream, "m1.cpu");
    EXPECT_EQ(statuses[1].stream, "m2.cpu");
    EXPECT_EQ(statuses[1].anomalies, 1u);

    std::string report = guard.report();
    EXPECT_NE(report.find("m1.cpu"), std::string::npos);
    EXPECT_NE(report.find("HEALTHY"), std::string::npos);
    EXPECT_NE(report.find("out-of-range"), std::string::npos);
    EXPECT_NE(guard.summaryLine().find("streams=2"), std::string::npos);
}

TEST(Guard, ExportsMetricsToGlobalRegistry)
{
    SensorGuard guard;
    guard.filter("s", 0.0, 40.0);
    guard.filter("s", 1.0, 500.0);
    std::string text = metrics::Registry::global().renderProm();
    EXPECT_NE(text.find("guard_samples_total 2"), std::string::npos);
    EXPECT_NE(text.find("guard_anomalies_total 1"), std::string::npos);
    EXPECT_NE(text.find("guard_streams 1"), std::string::npos);
}

TEST(SensorFaults, StuckAtFreezesFirstReading)
{
    net::SensorFaultSpec spec;
    spec.mode = net::SensorFaultSpec::Mode::StuckAt;
    spec.startSeconds = 100.0;
    net::SensorFaultInjector injector(spec);
    EXPECT_EQ(injector.apply(0.0, 30.0), 30.0); // before the window
    EXPECT_FALSE(injector.activeAt(0.0));
    EXPECT_EQ(injector.apply(100.0, 31.0), 31.0); // freezes here
    EXPECT_EQ(injector.apply(200.0, 55.0), 31.0);
    EXPECT_EQ(injector.counters().readings, 3u);
    EXPECT_EQ(injector.counters().faulted, 2u);
}

TEST(SensorFaults, StuckAtExplicitValue)
{
    net::SensorFaultSpec spec;
    spec.mode = net::SensorFaultSpec::Mode::StuckAt;
    spec.stuckValue = 25.0;
    net::SensorFaultInjector injector(spec);
    EXPECT_EQ(injector.apply(0.0, 48.0), 25.0);
    EXPECT_EQ(injector.apply(1.0, 49.0), 25.0);
}

TEST(SensorFaults, SpikeIsOccasionalAndDeterministic)
{
    net::SensorFaultSpec spec;
    spec.mode = net::SensorFaultSpec::Mode::Spike;
    spec.spikeProbability = 0.25;
    net::SensorFaultInjector a(spec);
    net::SensorFaultInjector b(spec);
    int spikes = 0;
    for (int i = 0; i < 400; ++i) {
        auto va = a.apply(i * 1.0, 40.0);
        auto vb = b.apply(i * 1.0, 40.0);
        ASSERT_TRUE(va.has_value());
        EXPECT_EQ(*va, *vb); // same seed, same plan
        if (*va > 40.0) {
            EXPECT_DOUBLE_EQ(*va, 40.0 + spec.spikeMagnitude);
            ++spikes;
        }
    }
    EXPECT_GT(spikes, 50);
    EXPECT_LT(spikes, 160);
}

TEST(SensorFaults, DriftGrowsWithTime)
{
    net::SensorFaultSpec spec;
    spec.mode = net::SensorFaultSpec::Mode::Drift;
    spec.driftPerSecond = 0.1;
    spec.startSeconds = 50.0;
    net::SensorFaultInjector injector(spec);
    EXPECT_EQ(injector.apply(0.0, 40.0), 40.0);
    EXPECT_NEAR(*injector.apply(50.0, 40.0), 40.0, 1e-12);
    EXPECT_NEAR(*injector.apply(150.0, 40.0), 50.0, 1e-9);
}

TEST(SensorFaults, DropoutSuppressesReadings)
{
    net::SensorFaultSpec spec;
    spec.mode = net::SensorFaultSpec::Mode::Dropout;
    spec.dropProbability = 1.0;
    spec.endSeconds = 10.0;
    net::SensorFaultInjector injector(spec);
    EXPECT_FALSE(injector.apply(0.0, 40.0).has_value());
    EXPECT_EQ(injector.counters().dropped, 1u);
    EXPECT_TRUE(injector.apply(10.0, 40.0).has_value()); // window over
}

TEST(SensorFaults, ModeNames)
{
    EXPECT_STREQ(net::sensorFaultModeName(
                     net::SensorFaultSpec::Mode::StuckAt),
                 "stuck-at");
    EXPECT_STREQ(net::sensorFaultModeName(
                     net::SensorFaultSpec::Mode::Dropout),
                 "dropout");
}

class GuardFiddleFixture : public ::testing::Test
{
  protected:
    GuardFiddleFixture()
        : service_(solver_),
          client_(std::make_unique<sensor::LocalTransport>(service_),
                  "m1")
    {
        solver_.addMachine(core::table1Server("m1"));
        service_.setSensorGuard(&guard_);
    }

    ~GuardFiddleFixture() override { service_.setSensorGuard(nullptr); }

    core::Solver solver_;
    proto::SolverService service_;
    guard::SensorGuard guard_;
    sensor::SensorClient client_;
};

TEST_F(GuardFiddleFixture, SummaryAndStreamQueries)
{
    guard_.filter("m1.cpu", 0.0, 40.0);
    guard_.filter("m1.disk", 0.0, 500.0);

    auto [ok, summary] = client_.fiddle("guard");
    EXPECT_TRUE(ok) << summary;
    EXPECT_NE(summary.find("streams=2"), std::string::npos);

    auto [sok, line] = client_.fiddle("guard m1.disk");
    EXPECT_TRUE(sok) << line;
    EXPECT_NE(line.find("SUSPECT"), std::string::npos);

    // The `fiddle guard` spelling reaches the same handler.
    auto [fok, fsummary] = client_.fiddle("fiddle guard");
    EXPECT_TRUE(fok) << fsummary;
    EXPECT_EQ(fsummary, summary);

    auto [missing_ok, missing] = client_.fiddle("guard nope.cpu");
    EXPECT_FALSE(missing_ok);
}

TEST_F(GuardFiddleFixture, PagedReportReassembles)
{
    // Enough streams that the report cannot fit one 110-byte reply.
    for (int i = 0; i < 8; ++i)
        guard_.filter(format("m1.s%d", i), 0.0, 40.0);
    std::string expected = guard_.report();
    ASSERT_GT(expected.size(), 110u);

    std::string text;
    size_t offset = 0;
    for (int page = 0; page < 64; ++page) {
        auto [ok, message] =
            client_.fiddle(format("guard page %zu", offset));
        ASSERT_TRUE(ok) << message;
        size_t bar = message.find('|');
        ASSERT_NE(bar, std::string::npos) << message;
        auto next = parseInt(message.substr(0, bar));
        ASSERT_TRUE(next.has_value()) << message;
        text += message.substr(bar + 1);
        if (*next == 0)
            break;
        ASSERT_GT(static_cast<size_t>(*next), offset);
        offset = static_cast<size_t>(*next);
    }
    EXPECT_EQ(text, expected);
}

TEST_F(GuardFiddleFixture, NoGuardInstalledIsAnError)
{
    service_.setSensorGuard(nullptr);
    auto [ok, message] = client_.fiddle("guard");
    EXPECT_FALSE(ok);
    EXPECT_NE(message.find("no sensor guard"), std::string::npos);
}

} // namespace
} // namespace mercury
