/**
 * @file
 * Unit tests for tempd (PD controller, report protocol) and admd
 * (weight rescaling, connection caps, power cycling, Freon-EC
 * region logic).
 */

#include <gtest/gtest.h>

#include <memory>

#include "freon/controller.hh"
#include "freon/tempd.hh"
#include "lb/load_balancer.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace freon {
namespace {

TEST(FreonConfig, PaperDefaults)
{
    FreonConfig config = FreonConfig::paperDefaults();
    EXPECT_DOUBLE_EQ(config.components.at("cpu").high, 67.0);
    EXPECT_DOUBLE_EQ(config.components.at("cpu").low, 64.0);
    EXPECT_DOUBLE_EQ(config.components.at("disk").high, 65.0);
    EXPECT_DOUBLE_EQ(config.components.at("disk").low, 62.0);
    EXPECT_DOUBLE_EQ(config.kp, 0.1);
    EXPECT_DOUBLE_EQ(config.kd, 0.2);
    EXPECT_GT(config.components.at("cpu").redline,
              config.components.at("cpu").high);
}

/** Scripted sensor values driving one Tempd. */
struct TempdRig
{
    sim::Simulator simulator;
    std::map<std::string, double> temps{{"cpu", 40.0}, {"disk", 35.0}};
    std::vector<TempdReport> reports;
    std::unique_ptr<Tempd> tempd;

    TempdRig()
    {
        tempd = std::make_unique<Tempd>(
            simulator, "m1", FreonConfig::paperDefaults(),
            [this](const std::string &component)
                -> std::optional<double> { return temps.at(component); },
            [this](const TempdReport &report) {
                reports.push_back(report);
            });
    }
};

TEST(Tempd, SilentWhileCool)
{
    TempdRig rig;
    rig.tempd->tick();
    rig.tempd->tick();
    EXPECT_TRUE(rig.reports.empty());
    EXPECT_FALSE(rig.tempd->restricted());
}

TEST(Tempd, HotReportCarriesPdOutput)
{
    TempdRig rig;
    rig.temps["cpu"] = 66.0;
    rig.tempd->tick(); // below T_h: silent, but records last temps
    ASSERT_TRUE(rig.reports.empty());

    rig.temps["cpu"] = 68.5;
    rig.tempd->tick();
    ASSERT_EQ(rig.reports.size(), 1u);
    const TempdReport &report = rig.reports.back();
    EXPECT_EQ(report.kind, TempdReport::Kind::Hot);
    EXPECT_FALSE(report.redline);
    // kp (68.5 - 67) + kd (68.5 - 66) = 0.1*1.5 + 0.2*2.5 = 0.65.
    EXPECT_NEAR(report.output, 0.65, 1e-9);
    EXPECT_TRUE(rig.tempd->restricted());
}

TEST(Tempd, OutputIsNonNegative)
{
    TempdRig rig;
    rig.temps["cpu"] = 75.0;
    rig.tempd->tick();
    // Falling fast: derivative term dominates negatively.
    rig.temps["cpu"] = 67.5;
    rig.tempd->tick();
    ASSERT_EQ(rig.reports.size(), 2u);
    EXPECT_GE(rig.reports.back().output, 0.0);
    // kp*0.5 + kd*(-7.5) < 0 -> clamped to 0.
    EXPECT_DOUBLE_EQ(rig.reports.back().output, 0.0);
}

TEST(Tempd, RepeatsWhileHotThenCoolOnce)
{
    TempdRig rig;
    rig.temps["cpu"] = 70.0;
    rig.tempd->tick();
    rig.tempd->tick();
    EXPECT_EQ(rig.reports.size(), 2u); // repeated while over T_h

    rig.temps["cpu"] = 65.0; // between T_l and T_h: silence
    rig.tempd->tick();
    EXPECT_EQ(rig.reports.size(), 2u);
    EXPECT_TRUE(rig.tempd->restricted());

    rig.temps["cpu"] = 63.0; // below T_l: one Cool transition
    rig.tempd->tick();
    ASSERT_EQ(rig.reports.size(), 3u);
    EXPECT_EQ(rig.reports.back().kind, TempdReport::Kind::Cool);
    rig.tempd->tick();
    EXPECT_EQ(rig.reports.size(), 3u); // no repeat once lifted
}

TEST(Tempd, CoolNeedsEveryComponentBelowLow)
{
    TempdRig rig;
    rig.temps["cpu"] = 70.0;
    rig.tempd->tick();
    rig.temps["cpu"] = 63.0;
    rig.temps["disk"] = 63.0; // disk T_l is 62: still too warm
    rig.tempd->tick();
    EXPECT_EQ(rig.reports.back().kind, TempdReport::Kind::Hot);
    EXPECT_TRUE(rig.tempd->restricted());

    rig.temps["disk"] = 61.0;
    rig.tempd->tick();
    EXPECT_EQ(rig.reports.back().kind, TempdReport::Kind::Cool);
}

TEST(Tempd, RedlineFlagged)
{
    TempdRig rig;
    rig.temps["cpu"] = 69.5; // over the 69 red line
    rig.tempd->tick();
    ASSERT_EQ(rig.reports.size(), 1u);
    EXPECT_TRUE(rig.reports.back().redline);
}

TEST(Tempd, DiskThresholdsApply)
{
    TempdRig rig;
    rig.temps["disk"] = 66.0; // over disk T_h = 65
    rig.tempd->tick();
    ASSERT_EQ(rig.reports.size(), 1u);
    EXPECT_EQ(rig.reports.back().kind, TempdReport::Kind::Hot);
}

/** Cluster rig for controller tests. */
struct ControllerRig
{
    sim::Simulator simulator;
    std::vector<std::unique_ptr<cluster::ServerMachine>> machines;
    lb::LoadBalancer balancer;
    std::unique_ptr<FreonController> controller;

    explicit ControllerRig(int servers, PolicyKind policy,
                           int min_active = 1)
    {
        cluster::ServerConfig server_config;
        server_config.maxConnections = 100000;
        server_config.maxQueueSeconds = 1e9;
        for (int i = 0; i < servers; ++i) {
            machines.push_back(std::make_unique<cluster::ServerMachine>(
                simulator, "m" + std::to_string(i + 1), server_config));
            balancer.addServer(machines.back().get());
        }
        FreonController::Options options;
        options.policy = policy;
        options.minActiveServers = min_active;
        if (policy == PolicyKind::FreonEC) {
            for (int i = 0; i < servers; ++i) {
                options.regionOf["m" + std::to_string(i + 1)] =
                    (i % 2 == 0) ? 0 : 1;
            }
        }
        controller = std::make_unique<FreonController>(simulator, balancer,
                                                       options);
        controller->start();
    }

    TempdReport
    hotReport(const std::string &machine, double output,
              bool redline = false)
    {
        TempdReport report;
        report.machine = machine;
        report.kind = TempdReport::Kind::Hot;
        report.output = output;
        report.redline = redline;
        report.utilizations = {{"cpu", 0.4}, {"disk", 0.1}};
        return report;
    }

    TempdReport
    coolReport(const std::string &machine)
    {
        TempdReport report;
        report.machine = machine;
        report.kind = TempdReport::Kind::Cool;
        report.utilizations = {{"cpu", 0.2}, {"disk", 0.1}};
        return report;
    }

    TempdReport
    degradedReport(const std::string &machine)
    {
        TempdReport report;
        report.machine = machine;
        report.kind = TempdReport::Kind::Degraded;
        report.degraded = true;
        report.utilizations = {{"cpu", 0.4}, {"disk", 0.1}};
        return report;
    }
};

TEST(FreonBase, HotReportHalvesShareForOutputOne)
{
    ControllerRig rig(4, PolicyKind::FreonBase);
    rig.simulator.runUntil(sim::seconds(30)); // collect conn samples
    rig.controller->onReport(rig.hotReport("m1", 1.0));

    // Before: share 1/4. Target: 1/8. W_rest = 3000 ->
    // w' = (1/8)*3000/(7/8) = 428.57 -> 429.
    EXPECT_EQ(rig.balancer.weight("m1"), 429);
    EXPECT_TRUE(rig.controller->isRestricted("m1"));
    EXPECT_GT(rig.balancer.connectionCap("m1"), 0);
    EXPECT_EQ(rig.controller->weightAdjustments(), 1u);
}

TEST(FreonBase, CoolRestoresDefaults)
{
    ControllerRig rig(4, PolicyKind::FreonBase);
    rig.simulator.runUntil(sim::seconds(30));
    rig.controller->onReport(rig.hotReport("m1", 1.0));
    rig.controller->onReport(rig.coolReport("m1"));
    EXPECT_EQ(rig.balancer.weight("m1"), lb::LoadBalancer::kDefaultWeight);
    EXPECT_EQ(rig.balancer.connectionCap("m1"), 0);
    EXPECT_FALSE(rig.controller->isRestricted("m1"));
}

TEST(FreonBase, RepeatedAdjustmentsCompound)
{
    ControllerRig rig(4, PolicyKind::FreonBase);
    rig.simulator.runUntil(sim::seconds(30));
    rig.controller->onReport(rig.hotReport("m1", 1.0));
    int first = rig.balancer.weight("m1");
    rig.controller->onReport(rig.hotReport("m1", 1.0));
    EXPECT_LT(rig.balancer.weight("m1"), first);
}

TEST(FreonBase, ZeroOutputOnlyCaps)
{
    ControllerRig rig(4, PolicyKind::FreonBase);
    rig.simulator.runUntil(sim::seconds(30));
    rig.controller->onReport(rig.hotReport("m1", 0.0));
    EXPECT_EQ(rig.balancer.weight("m1"), lb::LoadBalancer::kDefaultWeight);
    EXPECT_GT(rig.balancer.connectionCap("m1"), 0);
}

TEST(FreonBase, HotBeforeFirstSampleCapsAtCurrentConnections)
{
    // Regression: a server that goes Hot before admd's first 5 s
    // connection sample has no average yet; the old code clamped the
    // missing average to a cap of 1 and starved it. The fix falls
    // back to the instantaneous connection count.
    ControllerRig rig(4, PolicyKind::FreonBase);
    cluster::Request request;
    for (int i = 0; i < 40; ++i) {
        request.id = i;
        request.cpuSeconds = 100.0; // long-lived: connections stay up
        rig.balancer.submit(request);
    }
    int live = rig.balancer.activeConnections("m1");
    ASSERT_GT(live, 1);

    // No simulator time has passed: connSamples is still empty.
    EXPECT_DOUBLE_EQ(rig.controller->averageConnections("m1"), 0.0);
    rig.controller->onReport(rig.hotReport("m1", 1.0));
    EXPECT_EQ(rig.balancer.connectionCap("m1"), live);
    EXPECT_EQ(rig.controller->capFallbacks(), 1u);
    EXPECT_TRUE(rig.controller->isRestricted("m1"));
}

TEST(FreonBase, HotBeforeFirstSampleWithNoConnectionsLeavesUncapped)
{
    ControllerRig rig(4, PolicyKind::FreonBase);
    rig.controller->onReport(rig.hotReport("m1", 1.0));
    // Nothing to base a cap on at all: stay uncapped (the weight
    // rescaling still sheds load); a cap of 1 would starve the server
    // for a full sampling period.
    EXPECT_EQ(rig.balancer.connectionCap("m1"), 0);
    EXPECT_EQ(rig.controller->capFallbacks(), 1u);
}

TEST(FreonBase, CapUsesAverageOnceSamplesExist)
{
    ControllerRig rig(4, PolicyKind::FreonBase);
    rig.simulator.runUntil(sim::seconds(30));
    rig.controller->onReport(rig.hotReport("m1", 1.0));
    // Samples exist (all zero connections): the average path clamps
    // to 1 and no fallback is recorded.
    EXPECT_EQ(rig.balancer.connectionCap("m1"), 1);
    EXPECT_EQ(rig.controller->capFallbacks(), 0u);
    EXPECT_EQ(rig.controller->capAdjustments(), 1u);
}

TEST(FreonBase, RedlineTurnsServerOff)
{
    ControllerRig rig(4, PolicyKind::FreonBase);
    rig.controller->onReport(rig.hotReport("m1", 2.0, true));
    EXPECT_TRUE(rig.balancer.server("m1").isOff());
    EXPECT_FALSE(rig.balancer.enabled("m1"));
    EXPECT_EQ(rig.controller->serversTurnedOff(), 1u);
    EXPECT_EQ(rig.controller->activeServers(), 3);
}

TEST(Traditional, IgnoresHotBelowRedline)
{
    ControllerRig rig(4, PolicyKind::Traditional);
    rig.simulator.runUntil(sim::seconds(30));
    rig.controller->onReport(rig.hotReport("m1", 3.0));
    EXPECT_EQ(rig.balancer.weight("m1"), lb::LoadBalancer::kDefaultWeight);
    EXPECT_EQ(rig.balancer.connectionCap("m1"), 0);
    EXPECT_TRUE(rig.balancer.server("m1").isOn());

    rig.controller->onReport(rig.hotReport("m1", 3.0, true));
    EXPECT_TRUE(rig.balancer.server("m1").isOff());
}

TEST(AverageConnections, RollingWindow)
{
    ControllerRig rig(2, PolicyKind::FreonBase);
    // Hold 10 connections on m1 by submitting long requests.
    for (int i = 0; i < 20; ++i) {
        cluster::Request request;
        request.id = i;
        request.cpuSeconds = 1000.0;
        rig.balancer.submit(request);
    }
    rig.simulator.runUntil(sim::minutes(2));
    EXPECT_NEAR(rig.controller->averageConnections("m1"), 10.0, 0.5);
}

TEST(FreonEC, ShutsIdleServersDown)
{
    ControllerRig rig(4, PolicyKind::FreonEC);
    // Idle reports from everyone.
    for (const char *name : {"m1", "m2", "m3", "m4"}) {
        TempdReport report;
        report.machine = name;
        report.kind = TempdReport::Kind::Status;
        report.utilizations = {{"cpu", 0.05}, {"disk", 0.01}};
        rig.controller->onReport(report);
    }
    rig.simulator.runUntil(sim::minutes(3));
    EXPECT_EQ(rig.controller->activeServers(), 1);
    EXPECT_EQ(rig.controller->serversTurnedOff(), 3u);
}

TEST(FreonEC, RespectsMinimumActive)
{
    ControllerRig rig(4, PolicyKind::FreonEC, 2);
    for (const char *name : {"m1", "m2", "m3", "m4"}) {
        TempdReport report;
        report.machine = name;
        report.kind = TempdReport::Kind::Status;
        report.utilizations = {{"cpu", 0.01}, {"disk", 0.0}};
        rig.controller->onReport(report);
    }
    rig.simulator.runUntil(sim::minutes(3));
    EXPECT_EQ(rig.controller->activeServers(), 2);
}

TEST(FreonEC, GrowsOnProjectedUtilization)
{
    ControllerRig rig(4, PolicyKind::FreonEC);
    auto status = [&](const char *name, double cpu) {
        TempdReport report;
        report.machine = name;
        report.kind = TempdReport::Kind::Status;
        report.utilizations = {{"cpu", cpu}, {"disk", 0.05}};
        rig.controller->onReport(report);
    };
    // Shrink to one server first.
    for (const char *name : {"m1", "m2", "m3", "m4"})
        status(name, 0.02);
    rig.simulator.runUntil(sim::minutes(3));
    ASSERT_EQ(rig.controller->activeServers(), 1);

    // Rising load: 0.4 then 0.6 -> projected 0.6 + 2*0.2 = 1.0 > 0.7.
    for (const char *name : {"m1", "m2", "m3", "m4"}) {
        if (rig.balancer.server(name).isOn())
            status(name, 0.4);
    }
    rig.simulator.runUntil(sim::minutes(4));
    for (const char *name : {"m1", "m2", "m3", "m4"}) {
        if (rig.balancer.server(name).isOn())
            status(name, 0.6);
    }
    rig.simulator.runUntil(sim::minutes(5));
    EXPECT_GE(rig.controller->activeServers(), 2);
    EXPECT_GE(rig.controller->serversTurnedOn(), 1u);
}

TEST(FreonEC, HotServerReplacedFromOtherRegion)
{
    ControllerRig rig(4, PolicyKind::FreonEC);
    // Make m3 (region 0) off so a replacement is available, and keep
    // utilization moderate so removal is not free.
    auto status = [&](const char *name, double cpu) {
        TempdReport report;
        report.machine = name;
        report.kind = TempdReport::Kind::Status;
        report.utilizations = {{"cpu", cpu}, {"disk", 0.05}};
        rig.controller->onReport(report);
    };
    rig.balancer.server("m3").beginShutdown();
    rig.balancer.setEnabled("m3", false);
    for (const char *name : {"m1", "m2", "m4"})
        status(name, 0.45); // removal of one would push avg over 0.6

    TempdReport hot = rig.hotReport("m1", 1.5);
    hot.utilizations = {{"cpu", 0.45}, {"disk", 0.05}};
    rig.controller->onReport(hot);

    // m1 must be going down, and a replacement must be booting.
    EXPECT_FALSE(rig.balancer.server("m1").isOn());
    int booting = 0;
    for (const char *name : {"m2", "m3", "m4"}) {
        if (rig.balancer.server(name).powerState() ==
            cluster::PowerState::Booting) {
            ++booting;
        }
    }
    EXPECT_EQ(booting, 1);
    EXPECT_EQ(rig.controller->regionEmergencies(0), 1);
}

TEST(FreonEC, FallsBackToBasePolicyWhenAllNeeded)
{
    ControllerRig rig(2, PolicyKind::FreonEC, 1);
    rig.simulator.runUntil(sim::seconds(30));
    auto status = [&](const char *name, double cpu) {
        TempdReport report;
        report.machine = name;
        report.kind = TempdReport::Kind::Status;
        report.utilizations = {{"cpu", cpu}, {"disk", 0.1}};
        rig.controller->onReport(report);
    };
    status("m1", 0.65);
    status("m2", 0.65);

    TempdReport hot = rig.hotReport("m1", 1.0);
    hot.utilizations = {{"cpu", 0.65}, {"disk", 0.1}};
    rig.controller->onReport(hot);

    // No spare capacity and nothing to boot: base policy applies.
    EXPECT_TRUE(rig.balancer.server("m1").isOn());
    EXPECT_LT(rig.balancer.weight("m1"), lb::LoadBalancer::kDefaultWeight);
    EXPECT_TRUE(rig.controller->isRestricted("m1"));
}

TEST(Tempd, ExactlyAtTriggerThresholdStaysSilent)
{
    TempdRig rig;
    rig.temps["cpu"] = 67.0; // T_h exactly: the trigger is strict
    rig.tempd->tick();
    EXPECT_TRUE(rig.reports.empty());
    EXPECT_FALSE(rig.tempd->restricted());
}

TEST(Tempd, BoundaryOscillationHoldsRestrictionWithoutFlapping)
{
    // A temperature dithering across T_h = 67 must not release the
    // restriction on the cool half-cycles: the T_l..T_h deadband is
    // the hysteresis that prevents flapping.
    TempdRig rig;
    for (int cycle = 0; cycle < 5; ++cycle) {
        rig.temps["cpu"] = 67.1;
        rig.tempd->tick(); // Hot repeat
        rig.temps["cpu"] = 66.9;
        rig.tempd->tick(); // in the deadband: silent, still restricted
    }
    ASSERT_EQ(rig.reports.size(), 5u);
    for (const TempdReport &report : rig.reports)
        EXPECT_EQ(report.kind, TempdReport::Kind::Hot);
    EXPECT_TRUE(rig.tempd->restricted());

    // The release threshold is strict too: exactly T_l holds on.
    rig.temps["cpu"] = 64.0;
    rig.tempd->tick();
    EXPECT_EQ(rig.reports.size(), 5u);
    EXPECT_TRUE(rig.tempd->restricted());

    rig.temps["cpu"] = 63.9; // below T_l at last: one Cool, then quiet
    rig.tempd->tick();
    ASSERT_EQ(rig.reports.size(), 6u);
    EXPECT_EQ(rig.reports.back().kind, TempdReport::Kind::Cool);
    EXPECT_FALSE(rig.tempd->restricted());
}

TEST(FreonBase, OscillationAtCapBoundaryBoundsTransitions)
{
    // However many Hot repeats an episode produces, the controller
    // books exactly one restriction transition per edge — the
    // freon_restriction_transitions metric counts episodes, not
    // reports, so boundary dithering cannot flap the cap on and off.
    ControllerRig rig(4, PolicyKind::FreonBase);
    rig.simulator.runUntil(sim::seconds(30));
    for (int i = 0; i < 6; ++i)
        rig.controller->onReport(rig.hotReport("m1", 0.05));
    EXPECT_EQ(rig.controller->restrictionTransitions(), 1u);
    EXPECT_TRUE(rig.controller->isRestricted("m1"));

    rig.controller->onReport(rig.coolReport("m1"));
    EXPECT_EQ(rig.controller->restrictionTransitions(), 2u);

    // A second full episode costs exactly two more transitions.
    for (int i = 0; i < 6; ++i)
        rig.controller->onReport(rig.hotReport("m1", 0.05));
    rig.controller->onReport(rig.coolReport("m1"));
    EXPECT_EQ(rig.controller->restrictionTransitions(), 4u);
    EXPECT_FALSE(rig.controller->isRestricted("m1"));
}

TEST(FreonBase, FailSafeAppliesOncePerDegradedEpisode)
{
    ControllerRig rig(4, PolicyKind::FreonBase);
    rig.simulator.runUntil(sim::seconds(30));

    rig.controller->onReport(rig.degradedReport("m1"));
    EXPECT_EQ(rig.controller->failSafeApplications(), 1u);
    EXPECT_TRUE(rig.controller->isRestricted("m1"));
    EXPECT_EQ(rig.controller->degradedServers(), 1);
    int weight = rig.balancer.weight("m1");
    EXPECT_LT(weight, lb::LoadBalancer::kDefaultWeight);

    // The report repeats every tempd period; compounding the weight
    // rescaling each time would starve a machine whose only crime is
    // a broken thermistor.
    rig.controller->onReport(rig.degradedReport("m1"));
    rig.controller->onReport(rig.degradedReport("m1"));
    EXPECT_EQ(rig.controller->failSafeApplications(), 1u);
    EXPECT_EQ(rig.balancer.weight("m1"), weight);
    EXPECT_EQ(rig.controller->degradedReports(), 3u);

    // A trusted Cool ends the episode and restores full service...
    rig.controller->onReport(rig.coolReport("m1"));
    EXPECT_FALSE(rig.controller->isRestricted("m1"));
    EXPECT_EQ(rig.controller->degradedServers(), 0);
    EXPECT_EQ(rig.balancer.weight("m1"), lb::LoadBalancer::kDefaultWeight);

    // ...and a later trust loss is a fresh episode, actuated anew.
    rig.controller->onReport(rig.degradedReport("m1"));
    EXPECT_EQ(rig.controller->failSafeApplications(), 2u);
    EXPECT_TRUE(rig.controller->isRestricted("m1"));
}

TEST(FreonBase, DegradedNeverRaisesAnInstalledCap)
{
    ControllerRig rig(4, PolicyKind::FreonBase);
    // Long-lived load so the connection average is well above the
    // tight cap installed below.
    cluster::Request request;
    for (int i = 0; i < 40; ++i) {
        request.id = i;
        request.cpuSeconds = 1000.0;
        rig.balancer.submit(request);
    }
    rig.simulator.runUntil(sim::seconds(30));
    ASSERT_GE(rig.controller->averageConnections("m1"), 3.0);

    // A tighter cap is already installed (say by an earlier episode
    // whose load has since returned). The fail-safe recomputes a cap
    // from the connection average — but relaxing on data we cannot
    // verify is forbidden, so the installed cap stands.
    rig.balancer.setConnectionCap("m1", 2);
    rig.controller->onReport(rig.degradedReport("m1"));
    EXPECT_EQ(rig.balancer.connectionCap("m1"), 2);
    EXPECT_EQ(rig.controller->failSafeApplications(), 1u);

    // Once trust returns, the next episode may use the average again.
    rig.controller->onReport(rig.coolReport("m1"));
    EXPECT_EQ(rig.balancer.connectionCap("m1"), 0);
    rig.controller->onReport(rig.hotReport("m1", 1.0));
    EXPECT_GT(rig.balancer.connectionCap("m1"), 2);
}

TEST(Freon, TraditionalPolicyIgnoresDegraded)
{
    // Traditional thermal management has no load-shedding actuators;
    // the degraded report is counted but must not restrict anything.
    ControllerRig rig(4, PolicyKind::Traditional);
    rig.simulator.runUntil(sim::seconds(30));
    rig.controller->onReport(rig.degradedReport("m1"));
    EXPECT_EQ(rig.controller->degradedReports(), 1u);
    EXPECT_EQ(rig.controller->failSafeApplications(), 0u);
    EXPECT_FALSE(rig.controller->isRestricted("m1"));
    EXPECT_EQ(rig.balancer.weight("m1"), lb::LoadBalancer::kDefaultWeight);
}

} // namespace
} // namespace freon
} // namespace mercury
