/**
 * @file
 * Integration tests of the full Section 5 experiment: Mercury + LVS +
 * workload + tempd/admd, end to end. These check the paper's
 * qualitative results; the benches report the quantitative series.
 *
 * Threshold values come from FreonConfig::table1Defaults() (T_h = 74,
 * T_r = 76 for the CPU), the match of the paper's 67/69 to the
 * Table 1 emulated server's thermal sensitivity.
 */

#include <gtest/gtest.h>

#include "freon/experiment.hh"

namespace mercury {
namespace freon {
namespace {

constexpr double kCpuHigh = 74.0;
constexpr double kCpuRedline = 76.0;

ExperimentConfig
paperConfig(PolicyKind policy)
{
    ExperimentConfig config;
    config.policy = policy;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();
    return config;
}

TEST(Experiment, NoPolicyBaselineGetsHot)
{
    ExperimentConfig config = paperConfig(PolicyKind::None);
    ExperimentResult result = runExperiment(config);

    // The emergencies drive machine 1's CPU over T_h and nobody acts.
    EXPECT_GT(result.peakCpuTemperature.at("m1"), kCpuHigh);
    EXPECT_GT(result.firstTimeOverHigh.at("m1"), 480.0);
    // Unaffected machine 2 stays below the threshold.
    EXPECT_LT(result.peakCpuTemperature.at("m2"), kCpuHigh);
    // With 30% headroom nothing drops even without management.
    EXPECT_EQ(result.dropped, 0u);
}

TEST(Experiment, FreonBaseControlsTemperatureWithoutDrops)
{
    ExperimentResult result =
        runExperiment(paperConfig(PolicyKind::FreonBase));

    // "Freon was able to serve the entire workload without dropping
    // requests", holding the hot CPUs just under the red line.
    EXPECT_EQ(result.dropped, 0u);
    EXPECT_GT(result.weightAdjustments, 0u);
    EXPECT_EQ(result.serversTurnedOff, 0u);
    // It reacts after crossing T_h, so the peak exceeds T_h by a
    // little; the red line is never reached.
    EXPECT_GE(result.peakCpuTemperature.at("m1"), kCpuHigh);
    EXPECT_LT(result.peakCpuTemperature.at("m1"), kCpuRedline);
    EXPECT_LT(result.peakCpuTemperature.at("m3"), kCpuRedline);
    // The emergency machines cross T_h only after the 480 s injection.
    EXPECT_GT(result.firstTimeOverHigh.at("m1"), 480.0);
    // Machines 2 and 4 absorb the shifted load and stay safe.
    EXPECT_LT(result.peakCpuTemperature.at("m2"), kCpuHigh);
    EXPECT_LT(result.peakCpuTemperature.at("m4"), kCpuHigh);
}

TEST(Experiment, LoadShiftsAwayFromHotServers)
{
    ExperimentResult result =
        runExperiment(paperConfig(PolicyKind::FreonBase));
    // While m1 is restricted (mid-plateau), the cool machines carry a
    // larger share (Figure 11 bottom).
    double m1_mid = result.cpuUtilization.at("m1").sampleAt(1400.0);
    double m2_mid = result.cpuUtilization.at("m2").sampleAt(1400.0);
    EXPECT_GT(m2_mid, m1_mid);
}

TEST(Experiment, TraditionalDropsRequests)
{
    ExperimentResult result =
        runExperiment(paperConfig(PolicyKind::Traditional));

    // Both emergency machines red-line and are powered off (the paper
    // loses m1 at ~1440 s and m3 just before 1500 s)...
    EXPECT_EQ(result.serversTurnedOff, 2u);
    // ...and the two survivors cannot carry the peak: requests drop
    // (the paper reports 14% of the trace).
    EXPECT_GT(result.dropRate, 0.02);
    EXPECT_LT(result.dropRate, 0.40);
    // The survivors saturate but stay below the red line.
    EXPECT_LT(result.peakCpuTemperature.at("m2"), kCpuRedline);
    EXPECT_LT(result.peakCpuTemperature.at("m4"), kCpuRedline);
}

TEST(Experiment, FreonBeatsTraditionalOnDrops)
{
    ExperimentResult freon =
        runExperiment(paperConfig(PolicyKind::FreonBase));
    ExperimentResult traditional =
        runExperiment(paperConfig(PolicyKind::Traditional));
    EXPECT_LT(freon.dropRate + 1e-12, traditional.dropRate);
}

TEST(Experiment, FreonEcConservesEnergyWithoutDrops)
{
    ExperimentConfig config = paperConfig(PolicyKind::FreonEC);
    ExperimentResult ec = runExperiment(config);
    ExperimentResult base =
        runExperiment(paperConfig(PolicyKind::FreonBase));

    // The active configuration shrinks during the valleys (the paper
    // reaches a single server at 60 s) and grows back for the peak.
    EXPECT_LE(ec.activeServers.minValue(), 2.0);
    EXPECT_GE(ec.activeServers.maxValue(), 4.0);
    EXPECT_GT(ec.serversTurnedOff, 0u);
    EXPECT_GT(ec.serversTurnedOn, 0u);

    // Energy goes down versus always-on Freon; drops stay negligible.
    EXPECT_LT(ec.energyJoules, 0.95 * base.energyJoules);
    EXPECT_LT(ec.dropRate, 0.01);
    // Emergencies at the peak are still handled under the red line.
    EXPECT_LT(ec.peakCpuTemperature.at("m1"), kCpuRedline);
}

TEST(Experiment, FreonEcMachinesCoolWhileOff)
{
    ExperimentResult ec = runExperiment(paperConfig(PolicyKind::FreonEC));
    ExperimentResult base =
        runExperiment(paperConfig(PolicyKind::FreonBase));
    // During the morning valley (t = 420 s) the EC-idled machines sit
    // near the inlet temperature while the always-on cluster idles
    // warm ("they cooled down substantially ... about 10 C").
    double best_gap = 0.0;
    for (const auto &[name, series] : base.cpuTemperature) {
        double gap = series.sampleAt(420.0) -
                     ec.cpuTemperature.at(name).sampleAt(420.0);
        best_gap = std::max(best_gap, gap);
    }
    EXPECT_GT(best_gap, 5.0);
}

TEST(Experiment, DeterministicAcrossRuns)
{
    ExperimentResult a = runExperiment(paperConfig(PolicyKind::FreonBase));
    ExperimentResult b = runExperiment(paperConfig(PolicyKind::FreonBase));
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.peakCpuTemperature.at("m1"),
                     b.peakCpuTemperature.at("m1"));
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
}

} // namespace
} // namespace freon
} // namespace mercury
