/**
 * @file
 * Tests for the shared-memory telemetry plane: writer/reader round
 * trips, alias resolution, the seqlock under a hammering writer, the
 * staleness rule (on a deterministic test clock), layout/version
 * mismatches, and recovery after a writer dies or restarts with a
 * different topology.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "core/solver.hh"
#include "metrics/metrics.hh"
#include "telemetry/layout.hh"
#include "telemetry/reader.hh"
#include "telemetry/writer.hh"

namespace mercury {
namespace {

using telemetry::Reader;
using telemetry::Writer;

std::string
uniqueShmName()
{
    static std::atomic<int> counter{0};
    return "/mercury.test." + std::to_string(::getpid()) + "." +
           std::to_string(counter.fetch_add(1));
}

/** Deterministic staleness clock, restored on scope exit. */
class TestClock
{
  public:
    explicit TestClock(uint64_t start)
        : now_(start)
    {
        Reader::setClockForTest([this] { return now_.load(); });
    }
    ~TestClock() { Reader::setClockForTest(nullptr); }

    void set(uint64_t nanos) { now_.store(nanos); }
    void advance(uint64_t nanos) { now_.fetch_add(nanos); }

  private:
    std::atomic<uint64_t> now_;
};

TEST(Telemetry, WriterPublishesAndReaderReads)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    solver.addMachine(core::table1Server("m2"));
    solver.setUtilization("m1", "cpu", 0.7);
    solver.run(500.0);

    std::string name = uniqueShmName();
    Writer writer(name, solver, 1.0);
    ASSERT_TRUE(writer.valid());
    writer.installHook();

    Reader reader(name);
    EXPECT_TRUE(reader.usable());

    auto slot = reader.resolve("m1", "cpu");
    ASSERT_TRUE(slot.has_value());
    auto sample = reader.read(*slot);
    ASSERT_TRUE(sample.has_value());
    EXPECT_DOUBLE_EQ(sample->temperature,
                     solver.temperature("m1", "cpu"));
    EXPECT_DOUBLE_EQ(sample->utilization, 0.7);
    EXPECT_EQ(sample->iteration, solver.iterations());
    EXPECT_DOUBLE_EQ(sample->emulatedSeconds, solver.emulatedSeconds());

    // The iteration hook republishes: the next read sees new state.
    solver.iterate();
    sample = reader.read(*slot);
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(sample->iteration, solver.iterations());
    EXPECT_DOUBLE_EQ(sample->temperature,
                     solver.temperature("m1", "cpu"));

    // Both machines are in the directory.
    EXPECT_TRUE(reader.resolve("m2", "cpu_air").has_value());
    EXPECT_FALSE(reader.resolve("m3", "cpu").has_value());
    EXPECT_FALSE(reader.resolve("m1", "gpu").has_value());
}

TEST(Telemetry, AliasResolvesLikeTheSolver)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    std::string name = uniqueShmName();
    Writer writer(name, solver, 1.0);
    ASSERT_TRUE(writer.valid());

    Reader reader(name);
    auto via_alias = reader.resolve("m1", "disk");
    auto direct = reader.resolve("m1", "disk_platters");
    ASSERT_TRUE(via_alias.has_value());
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(via_alias->index, direct->index);

    auto sample = reader.read("m1", "disk");
    ASSERT_TRUE(sample.has_value());
    EXPECT_DOUBLE_EQ(sample->temperature,
                     solver.temperature("m1", "disk"));
}

TEST(Telemetry, MissingSegmentIsAMissThenRecovers)
{
    std::string name = uniqueShmName();
    uint64_t start = telemetry::monotonicNanos();
    TestClock clock(start);

    Reader reader(name);
    EXPECT_FALSE(reader.usable());
    EXPECT_FALSE(reader.read("m1", "cpu").has_value());

    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    Writer writer(name, solver, 1.0);
    ASSERT_TRUE(writer.valid());

    // Reconnects are throttled; within the throttle window the reader
    // still misses, past it the segment is picked up.
    EXPECT_FALSE(reader.usable());
    clock.advance(300'000'000ULL); // > 200 ms throttle
    EXPECT_TRUE(reader.usable());
    auto sample = reader.read("m1", "cpu");
    ASSERT_TRUE(sample.has_value());
    EXPECT_DOUBLE_EQ(sample->temperature,
                     solver.temperature("m1", "cpu"));
}

TEST(Telemetry, StaleHeartbeatFallsBackAndHeals)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    std::string name = uniqueShmName();
    Writer writer(name, solver, 1.0); // threshold: 4 periods = 4 s
    ASSERT_TRUE(writer.valid());

    uint64_t published = telemetry::monotonicNanos();
    TestClock clock(published + 1'000'000ULL);

    Reader reader(name);
    auto slot = reader.resolve("m1", "cpu");
    ASSERT_TRUE(slot.has_value());
    EXPECT_TRUE(reader.read(*slot).has_value());

    // The writer goes quiet for > 4 iteration periods: stale.
    clock.set(published + 5'000'000'000ULL);
    EXPECT_FALSE(reader.read(*slot).has_value());
    EXPECT_GE(reader.stats().staleFalls, 1u);

    // It publishes again (heartbeat catches back up): reads resume
    // without re-resolving — same mapping, same generation.
    writer.publish();
    clock.set(telemetry::monotonicNanos() + 1'000'000ULL);
    EXPECT_TRUE(reader.read(*slot).has_value());
}

TEST(Telemetry, DeadWriterIsNoticedImmediately)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    std::string name = uniqueShmName();

    uint64_t start = telemetry::monotonicNanos();
    TestClock clock(start);

    auto writer = std::make_unique<Writer>(name, solver, 1.0);
    ASSERT_TRUE(writer->valid());
    Reader reader(name);
    auto slot = reader.resolve("m1", "cpu");
    ASSERT_TRUE(slot.has_value());
    ASSERT_TRUE(reader.read(*slot).has_value());

    // Destruction stomps the magic before unlinking: the very next
    // read misses, no staleness wait needed.
    writer.reset();
    EXPECT_FALSE(reader.read(*slot).has_value());
    EXPECT_FALSE(reader.usable());
}

TEST(Telemetry, WriterRestartInvalidatesCachedSlots)
{
    std::string name = uniqueShmName();
    uint64_t start = telemetry::monotonicNanos();
    TestClock clock(start);

    core::Solver one;
    one.addMachine(core::table1Server("m1"));
    auto writer = std::make_unique<Writer>(name, one, 1.0);
    Reader reader(name);
    auto old_slot = reader.resolve("m1", "cpu");
    ASSERT_TRUE(old_slot.has_value());
    uint64_t old_generation = reader.generation();

    // Restart under the same name with a different topology.
    writer.reset();
    core::Solver two;
    two.addMachine(core::table1Server("extra"));
    two.addMachine(core::table1Server("m1"));
    writer = std::make_unique<Writer>(name, two, 1.0);

    clock.advance(300'000'000ULL); // past the reconnect throttle
    EXPECT_TRUE(reader.usable());
    EXPECT_GT(reader.generation(), old_generation);

    // The cached handle is refused; a fresh resolve works.
    EXPECT_FALSE(reader.read(*old_slot).has_value());
    auto fresh = reader.resolve("m1", "cpu");
    ASSERT_TRUE(fresh.has_value());
    auto sample = reader.read(*fresh);
    ASSERT_TRUE(sample.has_value());
    EXPECT_DOUBLE_EQ(sample->temperature, two.temperature("m1", "cpu"));
}

TEST(Telemetry, VersionMismatchIsRejected)
{
    // Hand-craft a segment with a future layout version.
    std::string name = uniqueShmName();
    int fd = ::shm_open(name.c_str(), O_CREAT | O_RDWR, 0644);
    ASSERT_GE(fd, 0);
    telemetry::Layout layout{0, 0};
    ASSERT_EQ(::ftruncate(fd, static_cast<off_t>(layout.totalBytes())),
              0);
    void *base = ::mmap(nullptr, layout.totalBytes(),
                        PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    ASSERT_NE(base, MAP_FAILED);
    auto *header = static_cast<telemetry::Header *>(base);
    header->version = telemetry::kShmVersion + 1;
    header->periodNanos = 1'000'000'000ULL;
    header->heartbeatNanos = telemetry::monotonicNanos();
    header->magic = telemetry::kShmMagic;

    Reader reader(name);
    EXPECT_FALSE(reader.usable());
    EXPECT_FALSE(reader.read("m1", "cpu").has_value());

    ::munmap(base, layout.totalBytes());
    ::shm_unlink(name.c_str());
}

TEST(Telemetry, OversizedDirectoryIsRejected)
{
    // A header whose slotCount promises more bytes than the object
    // holds must not be mapped (hostile or torn segment).
    std::string name = uniqueShmName();
    int fd = ::shm_open(name.c_str(), O_CREAT | O_RDWR, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, sizeof(telemetry::Header)), 0);
    void *base = ::mmap(nullptr, sizeof(telemetry::Header),
                        PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    ASSERT_NE(base, MAP_FAILED);
    auto *header = static_cast<telemetry::Header *>(base);
    header->version = telemetry::kShmVersion;
    header->slotCount = 1u << 20;
    header->periodNanos = 1'000'000'000ULL;
    header->heartbeatNanos = telemetry::monotonicNanos();
    header->magic = telemetry::kShmMagic;

    Reader reader(name);
    EXPECT_FALSE(reader.usable());

    ::munmap(base, sizeof(telemetry::Header));
    ::shm_unlink(name.c_str());
}

TEST(Telemetry, LongNamesAreSkippedNotTruncated)
{
    core::Solver solver;
    std::string long_name(40, 'x'); // > kNameWidth
    solver.addMachine(core::table1Server(long_name));
    solver.addMachine(core::table1Server("m1"));

    std::string name = uniqueShmName();
    Writer writer(name, solver, 1.0);
    ASSERT_TRUE(writer.valid());

    Reader reader(name);
    EXPECT_TRUE(reader.resolve("m1", "cpu").has_value());
    EXPECT_FALSE(reader.resolve(long_name, "cpu").has_value());
}

TEST(Telemetry, SeqlockNeverShowsTornReads)
{
    // A writer hammers publishes while the payload encodes an exact
    // invariant (temperature = 100 * utilization + 10, same doubles on
    // both sides); any torn read would break it.
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    core::ThermalGraph &graph = solver.machine("m1");

    std::string name = uniqueShmName();
    Writer writer(name, solver, 1.0);
    ASSERT_TRUE(writer.valid());

    // Establish the invariant before the reader can look: the
    // constructor's own first publish snapshotted u=0, t=21.6.
    graph.setUtilization("cpu", 0.0);
    graph.setTemperature("cpu", 10.0);
    writer.publish();

    std::atomic<bool> stop{false};
    std::thread publisher([&] {
        int i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            double u = static_cast<double>(i % 997) / 996.0;
            graph.setUtilization("cpu", u);
            graph.setTemperature("cpu", 100.0 * u + 10.0);
            writer.publish();
            ++i;
        }
    });

    Reader reader(name);
    auto slot = reader.resolve("m1", "cpu");
    ASSERT_TRUE(slot.has_value());

    uint64_t hits = 0;
    for (int i = 0; i < 200000; ++i) {
        auto sample = reader.read(*slot);
        if (!sample)
            continue; // bounded seqlock retries exhausted; never torn
        ++hits;
        ASSERT_DOUBLE_EQ(sample->temperature,
                         100.0 * sample->utilization + 10.0)
            << "torn read after " << hits << " hits";
    }
    stop.store(true, std::memory_order_relaxed);
    publisher.join();
    EXPECT_GT(hits, 0u);
}

TEST(Telemetry, FrozenMachineDataStaysFreshWhileWriterHeartbeats)
{
    // Staleness is a property of the writer, not of a quiescent
    // machine's data: a frozen machine republishes with an unchanged
    // stateVersion (the writer skips the recopy), yet its slots stay
    // readable as long as the segment heartbeat advances.
    core::Solver solver;
    solver.addMachine(core::table1Server("hot"));
    solver.addMachine(core::table1Server("frozen"));

    std::string name = uniqueShmName();
    Writer writer(name, solver, 1.0);
    ASSERT_TRUE(writer.valid());

    Reader reader(name);
    auto frozen_slot = reader.resolve("frozen", "cpu");
    ASSERT_TRUE(frozen_slot.has_value());
    auto before = reader.read(*frozen_slot);
    ASSERT_TRUE(before.has_value());

    // Only "hot" changes across five publishes.
    for (int i = 1; i <= 5; ++i) {
        solver.setUtilization("hot", "cpu", 0.1 * i);
        writer.publish();
    }

    auto after = reader.read(*frozen_slot);
    ASSERT_TRUE(after.has_value());
    EXPECT_DOUBLE_EQ(after->temperature, before->temperature);
    EXPECT_DOUBLE_EQ(after->utilization, before->utilization);
    EXPECT_EQ(reader.stats().staleFalls, 0u);

    // The hot machine's latest value did land in the same publishes.
    auto hot = reader.read("hot", "cpu");
    ASSERT_TRUE(hot.has_value());
    EXPECT_DOUBLE_EQ(hot->utilization, 0.5);
}

TEST(Telemetry, MetricsRegionRoundTrips)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    metrics::Registry registry;
    registry.counter("reads_total")->inc(3);
    registry.gauge("depth")->set(2.5);

    std::string name = uniqueShmName();
    Writer writer(name, solver, 1.0, &registry);
    ASSERT_TRUE(writer.valid());
    ASSERT_EQ(writer.metricCount(), 2u);

    Reader reader(name);
    auto published = reader.readMetrics();
    ASSERT_EQ(published.size(), 2u);
    std::map<std::string, double> byName(published.begin(),
                                         published.end());
    EXPECT_DOUBLE_EQ(byName.at("reads_total"), 3.0);
    EXPECT_DOUBLE_EQ(byName.at("depth"), 2.5);

    // publish() refreshes values, but the name table is frozen at
    // construction: instruments registered later never appear.
    registry.counter("reads_total")->inc(4);
    registry.counter("late_total")->inc(9);
    writer.publish();
    published = reader.readMetrics();
    byName = std::map<std::string, double>(published.begin(),
                                           published.end());
    EXPECT_DOUBLE_EQ(byName.at("reads_total"), 7.0);
    EXPECT_EQ(byName.count("late_total"), 0u);
}

TEST(Telemetry, NameNormalizationAndDefaults)
{
    EXPECT_EQ(telemetry::normalizeShmName("foo"), "/foo");
    EXPECT_EQ(telemetry::normalizeShmName("/foo"), "/foo");
    EXPECT_EQ(telemetry::defaultShmName(8367), "/mercury.8367");
}

} // namespace
} // namespace mercury
