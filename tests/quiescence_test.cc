/**
 * @file
 * Quiescence-aware active-set stepping: the Solver may freeze machines
 * whose temperatures converged and skip their step() calls. These
 * tests pin the engine's contract: epsilon = 0 is bitwise-identical
 * to the classic path, a positive epsilon keeps the trajectory within
 * 2 x epsilon of the exact solver under random mutation/wake
 * schedules, every wake source actually wakes, and the energy
 * accumulator keeps advancing while frozen. Also an asan/tsan target.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/solver.hh"

namespace mercury {
namespace core {
namespace {

std::vector<std::string>
makeNames(int machines)
{
    std::vector<std::string> names;
    for (int i = 0; i < machines; ++i)
        names.push_back("m" + std::to_string(i + 1));
    return names;
}

void
buildCluster(Solver &solver, const std::vector<std::string> &names)
{
    for (const std::string &name : names)
        solver.addMachine(table1Server(name));
    solver.setRoom(table1Room(names, 18.0));
}

/** Every node temperature of every machine, plus the energy counters. */
std::vector<double>
snapshot(Solver &solver, const std::vector<std::string> &names)
{
    std::vector<double> out;
    for (const std::string &name : names) {
        const ThermalGraph &graph = solver.machine(name);
        std::vector<double> temps = graph.temperatures();
        out.insert(out.end(), temps.begin(), temps.end());
        out.push_back(graph.energyConsumed());
    }
    return out;
}

/** One deterministic pseudo-random utilization/mutation schedule,
 *  replayable against any solver configuration. */
struct ScheduleEntry
{
    int iteration;
    int machine;
    double utilization;
};

std::vector<ScheduleEntry>
makeSchedule(int machines, int mutation_iterations, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> pick(0, machines - 1);
    std::uniform_real_distribution<double> load(0.0, 1.0);
    std::vector<ScheduleEntry> schedule;
    for (int it = 0; it < mutation_iterations; ++it) {
        if (it % 7 == 0)
            schedule.push_back({it, pick(rng), load(rng)});
    }
    return schedule;
}

/** Replay a schedule: mutation bursts separated by long steady
 *  stretches (where freezing can happen), `total` iterations. */
void
replay(Solver &solver, const std::vector<std::string> &names,
       const std::vector<ScheduleEntry> &schedule, int total)
{
    std::vector<Solver::NodeRef> cpus;
    for (const std::string &name : names)
        cpus.push_back(solver.resolveRef(name, "cpu"));
    size_t next = 0;
    for (int it = 0; it < total; ++it) {
        while (next < schedule.size() && schedule[next].iteration == it) {
            solver.setUtilization(cpus[schedule[next].machine],
                                  schedule[next].utilization);
            ++next;
        }
        solver.iterate();
    }
}

TEST(Quiescence, EpsilonZeroIsBitwiseIdenticalToClassicPath)
{
    const int kMachines = 6;
    const int kIterations = 3000;
    std::vector<std::string> names = makeNames(kMachines);
    std::vector<ScheduleEntry> schedule =
        makeSchedule(kMachines, 400, 12345);

    SolverConfig classic;
    classic.threads = 1;
    Solver exact(classic);
    buildCluster(exact, names);
    replay(exact, names, schedule, kIterations);

    // Same epsilon = 0 but with the other quiescence knobs set: the
    // engine must stay disabled and out of the arithmetic entirely.
    SolverConfig zero;
    zero.threads = 1;
    zero.quiescenceEpsilon = 0.0;
    zero.quiescenceHoldIterations = 1;
    zero.quiescenceRefreshIterations = 2;
    Solver gated(zero);
    buildCluster(gated, names);
    replay(gated, names, schedule, kIterations);

    EXPECT_FALSE(gated.quiescenceEnabled());
    EXPECT_EQ(gated.frozenMachineCount(), 0u);

    std::vector<double> a = snapshot(exact, names);
    std::vector<double> b = snapshot(gated, names);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)),
              0);
}

TEST(Quiescence, TrajectoryStaysWithinTwiceEpsilonOfExact)
{
    const int kMachines = 8;
    const double kEpsilon = 0.05;
    // Mutation burst, long steady stretch (machines freeze), second
    // burst (machines wake), second steady stretch.
    const int kBurst = 300;
    const int kSteady = 2700;
    std::vector<std::string> names = makeNames(kMachines);

    std::vector<ScheduleEntry> schedule = makeSchedule(kMachines, kBurst, 7);
    for (const ScheduleEntry &entry :
         makeSchedule(kMachines, kBurst, 99)) {
        schedule.push_back({entry.iteration + kBurst + kSteady,
                            entry.machine, entry.utilization});
    }
    const int kTotal = 2 * (kBurst + kSteady);

    SolverConfig exact_config;
    exact_config.threads = 1;
    Solver exact(exact_config);
    buildCluster(exact, names);

    SolverConfig active_config;
    active_config.threads = 1;
    active_config.quiescenceEpsilon = kEpsilon;
    Solver active(active_config);
    buildCluster(active, names);
    EXPECT_TRUE(active.quiescenceEnabled());

    replay(exact, names, schedule, kTotal);
    replay(active, names, schedule, kTotal);

    // The steady stretches were long enough that the active set really
    // shrank — otherwise this test proves nothing.
    EXPECT_GT(active.frozenMachineCount(), 0u);
    EXPECT_EQ(active.activeMachineCount() + active.frozenMachineCount(),
              static_cast<size_t>(kMachines));

    for (const std::string &name : names) {
        const ThermalGraph &ga = active.machine(name);
        const ThermalGraph &ge = exact.machine(name);
        std::vector<double> ta = ga.temperatures();
        std::vector<double> te = ge.temperatures();
        ASSERT_EQ(ta.size(), te.size());
        for (size_t i = 0; i < ta.size(); ++i) {
            EXPECT_NEAR(ta[i], te[i], 2.0 * kEpsilon)
                << name << " node " << i;
        }
        // Frozen machines accrue energy analytically; watts are
        // identical between the runs, so the totals agree to rounding.
        EXPECT_NEAR(ga.energyConsumed(), ge.energyConsumed(),
                    1e-6 * std::max(1.0, ge.energyConsumed()));
    }
}

TEST(Quiescence, UtilizationChangeWakesAFrozenMachine)
{
    std::vector<std::string> names = makeNames(4);
    SolverConfig config;
    config.threads = 1;
    config.quiescenceEpsilon = 0.5;
    Solver solver(config);
    buildCluster(solver, names);

    solver.run(2500.0);
    ASSERT_TRUE(solver.isFrozen("m1")) << "fleet never quiesced";

    // Identical re-send must NOT wake (the setUtilization early-out).
    double current = solver.utilization(solver.resolveRef("m1", "cpu"));
    solver.setUtilization("m1", "cpu", current);
    solver.iterate();
    EXPECT_TRUE(solver.isFrozen("m1"));

    // A real change wakes exactly that machine on the next iteration.
    solver.setUtilization("m1", "cpu", current > 0.5 ? 0.1 : 0.9);
    solver.iterate();
    EXPECT_FALSE(solver.isFrozen("m1"));
    EXPECT_TRUE(solver.isFrozen("m2"));
}

TEST(Quiescence, FiddleStyleMutationsWake)
{
    std::vector<std::string> names = makeNames(3);
    SolverConfig config;
    config.threads = 1;
    config.quiescenceEpsilon = 0.5;
    Solver solver(config);
    buildCluster(solver, names);
    solver.run(2500.0);
    ASSERT_TRUE(solver.isFrozen("m1"));
    ASSERT_TRUE(solver.isFrozen("m2"));
    ASSERT_TRUE(solver.isFrozen("m3"));

    solver.machine("m1").setFanCfm(50.0);
    solver.machine("m2").setTemperature("cpu", 60.0);
    solver.setInletTemperature("m3", 30.0);
    solver.iterate();
    EXPECT_FALSE(solver.isFrozen("m1"));
    EXPECT_FALSE(solver.isFrozen("m2"));
    EXPECT_FALSE(solver.isFrozen("m3"));
}

TEST(Quiescence, RoomInletDriftWakesTheFleet)
{
    std::vector<std::string> names = makeNames(4);
    SolverConfig config;
    config.threads = 1;
    config.quiescenceEpsilon = 0.2;
    Solver solver(config);
    buildCluster(solver, names);
    solver.run(3000.0);
    ASSERT_GT(solver.frozenMachineCount(), 0u) << "fleet never quiesced";

    // The AC setpoint jumps by far more than epsilon: the next room
    // step delivers drifted inlets and every frozen machine wakes.
    solver.room().setSourceTemperature("ac", 26.0);
    solver.iterate();
    EXPECT_EQ(solver.frozenMachineCount(), 0u);
}

TEST(Quiescence, WakeAllMachinesResetsTheActiveSet)
{
    std::vector<std::string> names = makeNames(4);
    SolverConfig config;
    config.threads = 1;
    config.quiescenceEpsilon = 0.5;
    Solver solver(config);
    buildCluster(solver, names);
    solver.run(2500.0);
    ASSERT_GT(solver.frozenMachineCount(), 0u);

    solver.wakeAllMachines();
    EXPECT_EQ(solver.frozenMachineCount(), 0u);
    EXPECT_EQ(solver.activeMachineCount(), names.size());

    // And the fleet re-freezes afterwards: waking is not sticky.
    solver.run(2500.0);
    EXPECT_GT(solver.frozenMachineCount(), 0u);
}

TEST(Quiescence, ParallelActiveSetMatchesSerialActiveSet)
{
    // The active-set fan-out preserves the determinism contract of the
    // classic path: thread count must not change a single bit.
    const int kMachines = 8;
    const int kIterations = 4000;
    std::vector<std::string> names = makeNames(kMachines);
    std::vector<ScheduleEntry> schedule =
        makeSchedule(kMachines, 500, 4242);

    auto run = [&](unsigned threads) {
        SolverConfig config;
        config.threads = threads;
        config.quiescenceEpsilon = 0.05;
        Solver solver(config);
        buildCluster(solver, names);
        replay(solver, names, schedule, kIterations);
        return snapshot(solver, names);
    };
    std::vector<double> serial = run(1);
    std::vector<double> parallel = run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(double)),
              0);
}

} // namespace
} // namespace core
} // namespace mercury
