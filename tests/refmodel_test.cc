/**
 * @file
 * Tests for the high-fidelity reference server (the "real machine"
 * substitute used in the Section 3 validations).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "refmodel/reference_server.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace mercury {
namespace refmodel {
namespace {

ReferenceConfig
noiselessConfig()
{
    ReferenceConfig config;
    config.sensorNoiseStddev = 0.0;
    config.sensorQuantization = 0.0;
    config.sensorLagSeconds = 0.0;
    return config;
}

TEST(ReferenceServer, StartsAtInletTemperature)
{
    ReferenceServer server(noiselessConfig());
    for (const std::string &probe : server.probeNames())
        EXPECT_DOUBLE_EQ(server.trueTemperature(probe), 21.6) << probe;
}

TEST(ReferenceServer, SteadyStateOrdering)
{
    ReferenceServer server(noiselessConfig());
    server.setUtilization("cpu", 1.0);
    server.setUtilization("disk", 0.5);
    server.step(30000.0);

    double die = server.trueTemperature("cpu_die");
    double sink = server.trueTemperature("heat_sink");
    double cpu_air = server.trueTemperature("cpu_air");
    double platters = server.trueTemperature("disk_platters");
    double shell = server.trueTemperature("disk_shell");
    double exhaust = server.trueTemperature("exhaust");

    EXPECT_GT(die, sink);       // heat flows die -> sink
    EXPECT_GT(sink, cpu_air);   // sink -> air
    EXPECT_GT(cpu_air, 21.6);
    EXPECT_GT(platters, shell);
    EXPECT_GT(shell, 21.6);
    EXPECT_GT(exhaust, 21.6);
    EXPECT_LT(die, 130.0);
}

TEST(ReferenceServer, EnergyBalanceAtSteadyState)
{
    ReferenceServer server(noiselessConfig());
    server.setUtilization("cpu", 1.0);
    server.setUtilization("disk", 1.0);
    server.step(60000.0);
    double mdot_c = units::cfmToKgPerS(38.6) * units::kAirSpecificHeat;
    double expected_rise = server.totalPower() / mdot_c;
    EXPECT_NEAR(server.trueTemperature("exhaust") - 21.6, expected_rise,
                0.05 * expected_rise);
}

TEST(ReferenceServer, UtilizationMonotonicity)
{
    double previous = 0.0;
    for (double u : {0.0, 0.3, 0.6, 1.0}) {
        ReferenceServer server(noiselessConfig());
        server.setUtilization("cpu", u);
        server.step(30000.0);
        double die = server.trueTemperature("cpu_die");
        EXPECT_GT(die, previous);
        previous = die;
    }
}

TEST(ReferenceServer, NonlinearCpuPower)
{
    // The reference CPU is super-linear: the 50% point burns *less*
    // than the halfway power (this is what Mercury's linear model must
    // absorb during calibration).
    ReferenceServer idle(noiselessConfig());
    ReferenceServer half(noiselessConfig());
    ReferenceServer busy(noiselessConfig());
    half.setUtilization("cpu", 0.5);
    busy.setUtilization("cpu", 1.0);
    double p_idle = idle.totalPower();
    double p_half = half.totalPower();
    double p_busy = busy.totalPower();
    EXPECT_LT(p_half - p_idle, 0.5 * (p_busy - p_idle));
    EXPECT_GT(p_half, p_idle);
}

TEST(ReferenceServer, FanFlowCoolsAndCouplingStrengthens)
{
    ReferenceServer slow(noiselessConfig());
    ReferenceServer fast(noiselessConfig());
    slow.setFanCfm(20.0);
    fast.setFanCfm(60.0);
    slow.setUtilization("cpu", 1.0);
    fast.setUtilization("cpu", 1.0);
    slow.step(30000.0);
    fast.step(30000.0);
    EXPECT_GT(slow.trueTemperature("cpu_die"),
              fast.trueTemperature("cpu_die") + 2.0);
}

TEST(ReferenceServer, InletStepPropagates)
{
    ReferenceServer server(noiselessConfig());
    server.setUtilization("cpu", 0.5);
    server.step(30000.0);
    double before = server.trueTemperature("cpu_die");
    server.setInletTemperature(31.6);
    server.step(30000.0);
    EXPECT_NEAR(server.trueTemperature("cpu_die"), before + 10.0, 0.6);
}

TEST(ReferenceServer, NoiselessSensorTracksTruth)
{
    ReferenceServer server(noiselessConfig());
    server.setUtilization("cpu", 1.0);
    server.step(500.0);
    EXPECT_NEAR(server.readSensor("cpu_air"),
                server.trueTemperature("cpu_air"), 1e-9);
}

TEST(ReferenceServer, SensorLagDelaysResponse)
{
    ReferenceConfig config = noiselessConfig();
    config.sensorLagSeconds = 30.0;
    ReferenceServer server(config);
    server.setUtilization("cpu", 1.0);
    server.step(60.0); // much shorter than the lag
    double truth = server.trueTemperature("cpu_die");
    double sensed = server.readSensor("cpu_die");
    EXPECT_GT(truth - sensed, 0.5); // the sensor is behind
}

TEST(ReferenceServer, QuantizationSnapsReadings)
{
    ReferenceConfig config = noiselessConfig();
    config.sensorQuantization = 0.5;
    ReferenceServer server(config);
    server.setUtilization("cpu", 0.7);
    server.step(1000.0);
    double reading = server.readSensor("cpu_air");
    EXPECT_NEAR(std::fmod(std::abs(reading), 0.5), 0.0, 1e-9);
}

TEST(ReferenceServer, NoiseIsDeterministicPerSeed)
{
    ReferenceConfig config;
    config.noiseSeed = 77;
    ReferenceServer a(config);
    ReferenceServer b(config);
    a.setUtilization("cpu", 0.8);
    b.setUtilization("cpu", 0.8);
    a.step(100.0);
    b.step(100.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(a.readSensor("cpu_air"), b.readSensor("cpu_air"));
}

TEST(ReferenceServer, NoisyReadingsScatterAroundTruth)
{
    ReferenceConfig config = noiselessConfig();
    config.sensorNoiseStddev = 0.3;
    ReferenceServer server(config);
    server.setUtilization("cpu", 1.0);
    server.step(5000.0);
    double truth = server.trueTemperature("cpu_air");
    RunningStats stats;
    for (int i = 0; i < 2000; ++i)
        stats.add(server.readSensor("cpu_air"));
    EXPECT_NEAR(stats.mean(), truth, 0.05);
    EXPECT_NEAR(stats.stddev(), 0.3, 0.05);
}

TEST(ReferenceServer, RejectsUnknownProbesAndComponents)
{
    ReferenceServer server(noiselessConfig());
    EXPECT_DEATH(server.trueTemperature("gpu"), "unknown probe");
    EXPECT_DEATH(server.setUtilization("gpu", 0.5), "unknown component");
}

} // namespace
} // namespace refmodel
} // namespace mercury
