/**
 * @file
 * Unit tests for the discrete-event engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

namespace mercury {
namespace sim {
namespace {

TEST(EventQueue, OrdersByTime)
{
    EventQueue queue;
    std::vector<int> fired;
    queue.schedule(30, [&] { fired.push_back(3); });
    queue.schedule(10, [&] { fired.push_back(1); });
    queue.schedule(20, [&] { fired.push_back(2); });
    while (!queue.empty())
        queue.pop().second();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder)
{
    EventQueue queue;
    std::vector<int> fired;
    for (int i = 0; i < 5; ++i)
        queue.schedule(100, [&fired, i] { fired.push_back(i); });
    while (!queue.empty())
        queue.pop().second();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent)
{
    EventQueue queue;
    std::vector<int> fired;
    queue.schedule(1, [&] { fired.push_back(1); });
    EventId doomed = queue.schedule(2, [&] { fired.push_back(2); });
    queue.schedule(3, [&] { fired.push_back(3); });
    queue.cancel(doomed);
    EXPECT_EQ(queue.size(), 2u);
    while (!queue.empty())
        queue.pop().second();
    EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue queue;
    EventId id = queue.schedule(1, [] {});
    queue.pop().second();
    queue.cancel(id); // must not underflow or corrupt
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue queue;
    EXPECT_EQ(queue.nextTime(), kTimeNever);
    queue.schedule(42, [] {});
    EXPECT_EQ(queue.nextTime(), 42);
}

TEST(Simulator, ClockAdvancesToEventTime)
{
    Simulator simulator;
    SimTime seen = -1;
    simulator.at(seconds(5), [&] { seen = simulator.now(); });
    simulator.runToCompletion();
    EXPECT_EQ(seen, seconds(5));
    EXPECT_EQ(simulator.now(), seconds(5));
}

TEST(Simulator, AfterIsRelative)
{
    Simulator simulator;
    std::vector<double> times;
    simulator.at(seconds(10), [&] {
        simulator.after(seconds(5), [&] {
            times.push_back(simulator.nowSeconds());
        });
    });
    simulator.runToCompletion();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_DOUBLE_EQ(times[0], 15.0);
}

TEST(Simulator, PeriodicFiresUntilStopped)
{
    Simulator simulator;
    int count = 0;
    simulator.every(seconds(1), [&] {
        ++count;
        return count < 5;
    });
    simulator.runToCompletion();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(simulator.now(), seconds(5));
}

TEST(Simulator, PeriodicPhaseOffset)
{
    Simulator simulator;
    std::vector<double> times;
    auto id = simulator.every(
        seconds(10),
        [&] {
            times.push_back(simulator.nowSeconds());
            return true;
        },
        seconds(3));
    simulator.runUntil(seconds(35));
    simulator.cancel(id);
    EXPECT_EQ(times, (std::vector<double>{3, 13, 23, 33}));
}

TEST(Simulator, CancelPeriodicChainBetweenFirings)
{
    Simulator simulator;
    int count = 0;
    EventId chain = simulator.every(seconds(1), [&] {
        ++count;
        return true;
    });
    simulator.runUntil(seconds(3));
    simulator.cancel(chain);
    simulator.runUntil(seconds(100));
    EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle)
{
    Simulator simulator;
    simulator.runUntil(seconds(50));
    EXPECT_EQ(simulator.now(), seconds(50));
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents)
{
    Simulator simulator;
    bool fired = false;
    simulator.at(seconds(100), [&] { fired = true; });
    simulator.runUntil(seconds(99));
    EXPECT_FALSE(fired);
    simulator.runUntil(seconds(100));
    EXPECT_TRUE(fired);
}

TEST(Simulator, EventsRunCounter)
{
    Simulator simulator;
    for (int i = 0; i < 7; ++i)
        simulator.at(seconds(i + 1), [] {});
    simulator.runToCompletion();
    EXPECT_EQ(simulator.eventsRun(), 7u);
}

TEST(Simulator, NestedSchedulingInsideEvent)
{
    Simulator simulator;
    std::vector<int> order;
    simulator.at(seconds(1), [&] {
        order.push_back(1);
        // Same-time follow-up must run after this event, same clock.
        simulator.after(0, [&] { order.push_back(2); });
    });
    simulator.at(seconds(2), [&] { order.push_back(3); });
    simulator.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimTimeHelpers, Conversions)
{
    EXPECT_EQ(seconds(1.5), 1500000);
    EXPECT_EQ(milliseconds(2.0), 2000);
    EXPECT_EQ(minutes(1.0), 60000000);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(2.5)), 2.5);
}

} // namespace
} // namespace sim
} // namespace mercury
