/**
 * @file
 * Tests for the LVS-style weighted least-connections load balancer.
 */

#include <gtest/gtest.h>

#include <memory>

#include "lb/load_balancer.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace lb {
namespace {

using cluster::Request;
using cluster::ServerMachine;

struct Rig
{
    sim::Simulator simulator;
    std::vector<std::unique_ptr<ServerMachine>> machines;
    LoadBalancer balancer;

    explicit Rig(int servers)
    {
        // Scheduling tests hold many long-lived connections open;
        // disable the overload safeguards so nothing drops.
        cluster::ServerConfig config;
        config.maxConnections = 100000;
        config.maxQueueSeconds = 1e9;
        for (int i = 0; i < servers; ++i) {
            machines.push_back(std::make_unique<ServerMachine>(
                simulator, "m" + std::to_string(i + 1), config));
            balancer.addServer(machines.back().get());
        }
    }

    Request
    request(double cpu_s)
    {
        static uint64_t next = 1;
        Request r;
        r.id = next++;
        r.cpuSeconds = cpu_s;
        return r;
    }
};

TEST(LoadBalancer, SpreadsEqualWeightsEvenly)
{
    Rig rig(4);
    for (int i = 0; i < 400; ++i)
        rig.balancer.submit(rig.request(10.0)); // long-lived
    for (const std::string &name : rig.balancer.serverNames())
        EXPECT_EQ(rig.balancer.activeConnections(name), 100) << name;
}

TEST(LoadBalancer, WeightsBiasDistribution)
{
    Rig rig(2);
    rig.balancer.setWeight("m1", 3000);
    rig.balancer.setWeight("m2", 1000);
    for (int i = 0; i < 400; ++i)
        rig.balancer.submit(rig.request(10.0));
    // Least-connections with 3:1 weights converges to a 3:1 split.
    EXPECT_NEAR(rig.balancer.activeConnections("m1"), 300, 2);
    EXPECT_NEAR(rig.balancer.activeConnections("m2"), 100, 2);
}

TEST(LoadBalancer, ZeroWeightStopsNewConnections)
{
    Rig rig(2);
    rig.balancer.setWeight("m1", 0);
    for (int i = 0; i < 50; ++i)
        rig.balancer.submit(rig.request(10.0));
    EXPECT_EQ(rig.balancer.activeConnections("m1"), 0);
    EXPECT_EQ(rig.balancer.activeConnections("m2"), 50);
}

TEST(LoadBalancer, ConnectionCapRedirectsExcess)
{
    Rig rig(2);
    rig.balancer.setConnectionCap("m1", 10);
    for (int i = 0; i < 100; ++i)
        rig.balancer.submit(rig.request(10.0));
    EXPECT_EQ(rig.balancer.activeConnections("m1"), 10);
    EXPECT_EQ(rig.balancer.activeConnections("m2"), 90);
}

TEST(LoadBalancer, DisabledServerReceivesNothing)
{
    Rig rig(2);
    rig.balancer.setEnabled("m1", false);
    for (int i = 0; i < 20; ++i)
        rig.balancer.submit(rig.request(10.0));
    EXPECT_EQ(rig.balancer.activeConnections("m1"), 0);
    EXPECT_EQ(rig.balancer.dispatchedTo("m2"), 20u);
}

TEST(LoadBalancer, OffServersAreSkipped)
{
    Rig rig(2);
    rig.machines[0]->beginShutdown(); // idle -> off immediately
    for (int i = 0; i < 20; ++i)
        rig.balancer.submit(rig.request(10.0));
    EXPECT_EQ(rig.balancer.activeConnections("m2"), 20);
}

TEST(LoadBalancer, DropsWhenNoServerEligible)
{
    Rig rig(2);
    rig.machines[0]->beginShutdown();
    rig.machines[1]->beginShutdown();
    for (int i = 0; i < 10; ++i)
        rig.balancer.submit(rig.request(0.01));
    EXPECT_EQ(rig.balancer.dropped(), 10u);
    EXPECT_EQ(rig.balancer.droppedNoEligible(), 10u);
    EXPECT_DOUBLE_EQ(rig.balancer.dropRate(), 1.0);
}

TEST(LoadBalancer, AllWeightsZeroDropsAreCountedNotCrashed)
{
    // Every weight zero used to be the scary case for a
    // division-based scheduler; the cross-multiplying pick must treat
    // it as "no eligible server" and count the outcome.
    Rig rig(3);
    for (const std::string &name : rig.balancer.serverNames())
        rig.balancer.setWeight(name, 0);
    for (int i = 0; i < 25; ++i)
        rig.balancer.submit(rig.request(0.01));
    EXPECT_EQ(rig.balancer.dropped(), 25u);
    EXPECT_EQ(rig.balancer.droppedNoEligible(), 25u);
    for (const std::string &name : rig.balancer.serverNames())
        EXPECT_EQ(rig.balancer.activeConnections(name), 0) << name;
}

TEST(LoadBalancer, AllDisabledDropsAreCounted)
{
    Rig rig(2);
    rig.balancer.setEnabled("m1", false);
    rig.balancer.setEnabled("m2", false);
    for (int i = 0; i < 7; ++i)
        rig.balancer.submit(rig.request(0.01));
    EXPECT_EQ(rig.balancer.droppedNoEligible(), 7u);
    // Re-enabling one server resumes dispatch.
    rig.balancer.setEnabled("m2", true);
    rig.balancer.submit(rig.request(0.01));
    EXPECT_EQ(rig.balancer.dispatchedTo("m2"), 1u);
    EXPECT_EQ(rig.balancer.droppedNoEligible(), 7u);
}

TEST(LoadBalancer, AllCappedDropsAreCounted)
{
    Rig rig(2);
    rig.balancer.setConnectionCap("m1", 1);
    rig.balancer.setConnectionCap("m2", 1);
    for (int i = 0; i < 5; ++i)
        rig.balancer.submit(rig.request(10.0));
    EXPECT_EQ(rig.balancer.activeConnections("m1"), 1);
    EXPECT_EQ(rig.balancer.activeConnections("m2"), 1);
    EXPECT_EQ(rig.balancer.droppedNoEligible(), 3u);
}

TEST(LoadBalancer, ServerSideDropsAreNotNoEligible)
{
    // Overload drops happen after admission, inside the server; the
    // no-eligible counter must stay untouched so the two failure
    // modes are distinguishable.
    sim::Simulator simulator;
    cluster::ServerConfig config;
    config.maxQueueSeconds = 0.05;
    ServerMachine machine(simulator, "m1", config);
    LoadBalancer balancer;
    balancer.addServer(&machine);
    for (int i = 0; i < 100; ++i) {
        Request r;
        r.id = i;
        r.cpuSeconds = 0.1;
        balancer.submit(r);
    }
    simulator.runToCompletion();
    EXPECT_GT(balancer.dropped(), 0u);
    EXPECT_EQ(balancer.droppedNoEligible(), 0u);
}

TEST(LoadBalancer, RegisterMetricsExportsCounters)
{
    metrics::Registry registry;
    Rig rig(1);
    rig.balancer.registerMetrics(registry);
    rig.machines[0]->beginShutdown();
    for (int i = 0; i < 4; ++i)
        rig.balancer.submit(rig.request(0.01));
    auto values = registry.valuesFor(
        {"lb_submitted_total", "lb_dropped_no_eligible_total"});
    ASSERT_EQ(values.size(), 2u);
    EXPECT_DOUBLE_EQ(values[0], 4.0);
    EXPECT_DOUBLE_EQ(values[1], 4.0);
}

TEST(LoadBalancer, CountsCompletions)
{
    Rig rig(2);
    for (int i = 0; i < 10; ++i)
        rig.balancer.submit(rig.request(0.01));
    rig.simulator.runToCompletion();
    EXPECT_EQ(rig.balancer.completed(), 10u);
    EXPECT_EQ(rig.balancer.submitted(), 10u);
    EXPECT_DOUBLE_EQ(rig.balancer.dropRate(), 0.0);
}

TEST(LoadBalancer, ServerLevelDropsAreCounted)
{
    sim::Simulator simulator;
    cluster::ServerConfig config;
    config.maxQueueSeconds = 0.05;
    ServerMachine machine(simulator, "m1", config);
    LoadBalancer balancer;
    balancer.addServer(&machine);
    for (int i = 0; i < 100; ++i) {
        Request r;
        r.id = i;
        r.cpuSeconds = 0.1;
        balancer.submit(r);
    }
    EXPECT_GT(balancer.dropped(), 0u);
    simulator.runToCompletion();
    EXPECT_EQ(balancer.completed() + balancer.dropped(), 100u);
}

TEST(LoadBalancer, LeastConnectionsFollowsCompletions)
{
    Rig rig(2);
    // Load m1 with long work, then submit short requests: they should
    // all land on m2 once it has fewer connections.
    for (int i = 0; i < 10; ++i)
        rig.balancer.submit(rig.request(100.0));
    uint64_t before = rig.balancer.dispatchedTo("m2");
    rig.balancer.setWeight("m1", 1); // nearly frozen
    for (int i = 0; i < 10; ++i)
        rig.balancer.submit(rig.request(0.001));
    EXPECT_EQ(rig.balancer.dispatchedTo("m2") - before, 10u);
}

} // namespace
} // namespace lb
} // namespace mercury
