/**
 * @file
 * Tests for the metrics registry: instrument correctness, concurrent
 * increments, the MetricsSnapshot RPC round trip, and the Prometheus
 * text exposition.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/solver.hh"
#include "metrics/metrics.hh"
#include "proto/solver_service.hh"
#include "sensor/client.hh"
#include "sensor/transport.hh"

namespace mercury {
namespace metrics {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.inc();
    counter.inc(41);
    EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndAdd)
{
    Gauge gauge;
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
    gauge.set(3.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
    gauge.add(-1.25);
    EXPECT_DOUBLE_EQ(gauge.value(), 2.25);
    gauge.set(-7.0);
    EXPECT_DOUBLE_EQ(gauge.value(), -7.0);
}

TEST(Histogram, CountSumMean)
{
    Histogram hist({1.0, 2.0, 4.0});
    hist.observe(0.5);
    hist.observe(1.5);
    hist.observe(3.0);
    hist.observe(100.0); // overflow bucket
    auto snap = hist.snapshot();
    EXPECT_EQ(snap.count, 4u);
    EXPECT_DOUBLE_EQ(snap.sum, 105.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 26.25);
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 1u);
    EXPECT_EQ(snap.counts[1], 1u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.counts[3], 1u);
}

TEST(Histogram, QuantilesInterpolate)
{
    Histogram hist({10.0, 20.0, 30.0});
    // 100 observations uniformly in the (0,10] bucket, 100 in (10,20].
    for (int i = 0; i < 100; ++i)
        hist.observe(5.0);
    for (int i = 0; i < 100; ++i)
        hist.observe(15.0);
    auto snap = hist.snapshot();
    // p50 lands exactly at the first bucket's upper bound.
    EXPECT_NEAR(snap.p50(), 10.0, 0.2);
    // p99 is deep inside the second bucket.
    double p99 = snap.p99();
    EXPECT_GT(p99, 15.0);
    EXPECT_LE(p99, 20.0);
}

TEST(Histogram, OverflowQuantileClampsToLastBound)
{
    Histogram hist({1.0});
    for (int i = 0; i < 10; ++i)
        hist.observe(50.0);
    EXPECT_DOUBLE_EQ(hist.snapshot().p99(), 1.0);
}

TEST(Histogram, EmptySnapshotIsSane)
{
    Histogram hist(Histogram::latencyBounds());
    auto snap = hist.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
    EXPECT_DOUBLE_EQ(snap.p99(), 0.0);
}

TEST(Histogram, LatencyBoundsAreStrictlyIncreasing)
{
    auto bounds = Histogram::latencyBounds();
    ASSERT_GE(bounds.size(), 10u);
    for (size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]) << i;
    EXPECT_LE(bounds.front(), 1e-6);
    EXPECT_GE(bounds.back(), 10.0);
}

TEST(HistogramDeathTest, RejectsBadBounds)
{
    EXPECT_DEATH(Histogram({}), "bound");
    EXPECT_DEATH(Histogram({2.0, 1.0}), "increasing");
}

TEST(Metrics, ConcurrentCounterHammer)
{
    Registry registry;
    Counter *counter = registry.counter("hammer_total");
    Histogram *hist =
        registry.histogram("hammer_seconds", {1e-6, 1e-3, 1.0});
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                counter->inc();
                hist->observe(1e-4);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter->value(),
              static_cast<uint64_t>(kThreads) * kIters);
    auto snap = hist->snapshot();
    EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_NEAR(snap.sum, kThreads * kIters * 1e-4, 1e-6);
}

TEST(Metrics, RegistryReturnsSameInstrumentForSameName)
{
    Registry registry;
    EXPECT_EQ(registry.counter("a"), registry.counter("a"));
    EXPECT_EQ(registry.gauge("g"), registry.gauge("g"));
}

TEST(MetricsDeathTest, KindMismatchPanics)
{
    Registry registry;
    registry.counter("x");
    EXPECT_DEATH(registry.gauge("x"), "different kind");
}

TEST(Metrics, CallbackGuardUnregistersOnDestruction)
{
    Registry registry;
    {
        CallbackGuard guard;
        guard.add(registry, "cb_value", "", [] { return 7.0; });
        auto values = registry.valuesFor({"cb_value"});
        ASSERT_EQ(values.size(), 1u);
        EXPECT_DOUBLE_EQ(values[0], 7.0);
    }
    auto values = registry.valuesFor({"cb_value"});
    ASSERT_EQ(values.size(), 1u);
    EXPECT_TRUE(std::isnan(values[0]));
}

TEST(Metrics, CallbackReregistrationNewOwnerWins)
{
    // Two components claim the same name (a test builds daemon A,
    // destroys it, builds daemon B). The newer registration must
    // survive the older guard's destruction.
    Registry registry;
    auto first = std::make_unique<CallbackGuard>();
    first->add(registry, "owner", "", [] { return 1.0; });
    CallbackGuard second;
    second.add(registry, "owner", "", [] { return 2.0; });
    first.reset(); // stale token: must NOT remove the new callback
    auto values = registry.valuesFor({"owner"});
    ASSERT_EQ(values.size(), 1u);
    EXPECT_DOUBLE_EQ(values[0], 2.0);
}

TEST(Metrics, RenderSummaryListsEveryInstrument)
{
    Registry registry;
    registry.counter("events_total")->inc(3);
    registry.gauge("level")->set(1.5);
    registry.histogram("lat_seconds", {0.1, 1.0})->observe(0.05);
    std::string text = registry.renderSummary();
    EXPECT_NE(text.find("events_total 3"), std::string::npos) << text;
    EXPECT_NE(text.find("level 1.5"), std::string::npos) << text;
    EXPECT_NE(text.find("lat_seconds count=1"), std::string::npos)
        << text;
}

TEST(Metrics, PromExpositionGolden)
{
    Registry registry;
    registry.counter("req_total", "requests")->inc(5);
    registry.gauge("temp", "degrees")->set(21.5);
    Histogram *hist = registry.histogram("lat", {0.5, 1.0}, "latency");
    hist->observe(0.25);
    hist->observe(0.75);
    hist->observe(2.0);
    const char *expected = "# HELP lat latency\n"
                           "# TYPE lat histogram\n"
                           "lat_bucket{le=\"0.5\"} 1\n"
                           "lat_bucket{le=\"1\"} 2\n"
                           "lat_bucket{le=\"+Inf\"} 3\n"
                           "lat_sum 3\n"
                           "lat_count 3\n"
                           "# HELP req_total requests\n"
                           "# TYPE req_total counter\n"
                           "req_total 5\n"
                           "# HELP temp degrees\n"
                           "# TYPE temp gauge\n"
                           "temp 21.5\n";
    EXPECT_EQ(registry.renderProm(), expected);
}

TEST(Metrics, SamplesExpandHistograms)
{
    Registry registry;
    registry.histogram("h", {1.0})->observe(0.5);
    std::vector<std::string> names;
    for (const Sample &sample : registry.samples())
        names.push_back(sample.name);
    EXPECT_EQ(names, (std::vector<std::string>{"h_count", "h_sum",
                                               "h_p50", "h_p99"}));
}

TEST(Metrics, WriteTextFileAtomically)
{
    Registry registry;
    registry.counter("written_total")->inc(9);
    std::string path = ::testing::TempDir() + "metrics_test.prom";
    ASSERT_TRUE(writeTextFile(registry, path));
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("written_total 9"), std::string::npos);
    // No tmp file left behind.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(Metrics, WriteTextFileFailsGracefully)
{
    Registry registry;
    EXPECT_FALSE(
        writeTextFile(registry, "/nonexistent-dir/metrics.prom"));
}

TEST(Metrics, SnapshotRpcRoundTrip)
{
    // A snapshot big enough to need several 110-byte fragments must
    // reassemble exactly through SensorClient::metricsText().
    core::Solver solver;
    solver.addMachine(core::table1Server("machine1"));
    proto::SolverService service(solver);

    Registry registry;
    for (int i = 0; i < 40; ++i) {
        registry.counter("pagination_counter_" + std::to_string(i))
            ->inc(i);
    }
    service.setMetricsRegistry(&registry);

    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service), "machine1");
    auto text = client.metricsText();
    ASSERT_TRUE(text.has_value());
    EXPECT_EQ(*text, registry.renderSummary());
    EXPECT_GT(text->size(), proto::kMetricsFragmentMax);
    EXPECT_NE(text->find("pagination_counter_39 39"), std::string::npos);
}

TEST(Metrics, SnapshotRpcIncludesServiceCounters)
{
    // setMetricsRegistry() exports the service's own packet-health
    // counters into the registry it is handed.
    core::Solver solver;
    solver.addMachine(core::table1Server("machine1"));
    proto::SolverService service(solver);
    Registry registry;
    service.setMetricsRegistry(&registry);

    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service), "machine1");
    ASSERT_TRUE(client.read("cpu").has_value());
    auto text = client.metricsText();
    ASSERT_TRUE(text.has_value());
    EXPECT_NE(text->find("net_sensor_reads_total 1"), std::string::npos)
        << *text;
    EXPECT_NE(text->find("net_updates_lost_total"), std::string::npos);
}

TEST(Metrics, FiddleMetricsCommandAnswers)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("machine1"));
    proto::SolverService service(solver);
    Registry registry;
    service.setMetricsRegistry(&registry);

    sensor::SensorClient client(
        std::make_unique<sensor::LocalTransport>(service), "machine1");
    // A plain fiddle reply truncates at one packet, so only the first
    // (alphabetically) metrics fit; the paginated RPC is the full view.
    auto [ok, message] = client.fiddle("metrics");
    EXPECT_TRUE(ok);
    EXPECT_NE(message.find("net_backlog_depth"), std::string::npos)
        << message;
}

} // namespace
} // namespace metrics
} // namespace mercury
