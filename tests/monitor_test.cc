/**
 * @file
 * Tests for monitord and its utilization sources.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hh"
#include "monitor/monitord.hh"
#include "monitor/source.hh"
#include "proto/solver_service.hh"

namespace mercury {
namespace monitor {
namespace {

TEST(SyntheticSource, EvaluatesAndClampsWaveforms)
{
    SyntheticSource source;
    source.addComponent("cpu", [](double t) { return t / 10.0; });
    source.addComponent("disk", [](double) { return 5.0; }); // clamped

    auto readings = source.sample(5.0);
    ASSERT_EQ(readings.size(), 2u);
    EXPECT_EQ(readings[0].component, "cpu");
    EXPECT_DOUBLE_EQ(readings[0].utilization, 0.5);
    EXPECT_DOUBLE_EQ(readings[1].utilization, 1.0);
}

TEST(TraceSource, HoldsLatestValuePerComponent)
{
    core::UtilizationTrace trace;
    trace.add(0.0, "m1", "cpu", 0.2);
    trace.add(10.0, "m1", "cpu", 0.8);
    trace.add(10.0, "m1", "disk", 0.3);
    trace.add(5.0, "m2", "cpu", 0.9); // different machine: ignored

    TraceSource source(trace, "m1");
    auto at0 = source.sample(0.0);
    ASSERT_EQ(at0.size(), 1u);
    EXPECT_DOUBLE_EQ(at0[0].utilization, 0.2);

    auto at9 = source.sample(9.0);
    ASSERT_EQ(at9.size(), 1u);
    EXPECT_DOUBLE_EQ(at9[0].utilization, 0.2);

    auto at10 = source.sample(10.0);
    ASSERT_EQ(at10.size(), 2u); // cpu + disk, sorted by name
    EXPECT_EQ(at10[0].component, "cpu");
    EXPECT_DOUBLE_EQ(at10[0].utilization, 0.8);
    EXPECT_EQ(at10[1].component, "disk");
}

TEST(CounterSource, UtilizationTracksLoad)
{
    auto model = core::pentium4CounterModel(10.0, 55.0);
    std::vector<double> peaks{2e9, 4e7, 6e7, 5e7};

    CounterSource idle(model, [](double) { return 0.0; }, peaks, 1);
    CounterSource half(model, [](double) { return 0.5; }, peaks, 2);
    CounterSource busy(model, [](double) { return 1.0; }, peaks, 3);

    double u_idle = idle.sample(1.0)[0].utilization;
    double u_half = half.sample(1.0)[0].utilization;
    double u_busy = busy.sample(1.0)[0].utilization;

    EXPECT_NEAR(u_idle, 0.0, 0.01);
    EXPECT_GT(u_half, 0.2);
    EXPECT_LT(u_half, 0.8);
    EXPECT_GT(u_busy, u_half);
    EXPECT_LE(u_busy, 1.0);
    EXPECT_EQ(busy.lastCounts().size(), 4u);
    EXPECT_GT(busy.lastCounts()[0], 1000000000ULL);
}

TEST(CounterSource, DeterministicForSameSeed)
{
    auto model = core::pentium4CounterModel(10.0, 55.0);
    std::vector<double> peaks{2e9, 4e7, 6e7, 5e7};
    CounterSource a(model, [](double) { return 0.7; }, peaks, 42);
    CounterSource b(model, [](double) { return 0.7; }, peaks, 42);
    for (double t = 1.0; t < 10.0; t += 1.0) {
        EXPECT_DOUBLE_EQ(a.sample(t)[0].utilization,
                         b.sample(t)[0].utilization);
    }
}

TEST(Monitord, ShipsReadingsIntoSolver)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    proto::SolverService service(solver);

    auto source = std::make_unique<SyntheticSource>();
    source->addComponent("cpu", [](double t) { return t < 50 ? 0.25 : 1.0; });
    source->addComponent("disk", [](double) { return 0.5; });

    Monitord daemon("m1", std::move(source),
                    Monitord::serviceSink(service));
    daemon.tick(1.0);
    EXPECT_EQ(daemon.updatesSent(), 2u);
    EXPECT_EQ(service.updatesApplied(), 2u);
    EXPECT_DOUBLE_EQ(solver.machine("m1").utilization("cpu"), 0.25);
    EXPECT_DOUBLE_EQ(solver.machine("m1").utilization("disk_platters"),
                     0.5);

    daemon.tick(60.0);
    EXPECT_DOUBLE_EQ(solver.machine("m1").utilization("cpu"), 1.0);
}

TEST(Monitord, SequenceNumbersIncrease)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    proto::SolverService service(solver);

    std::vector<uint64_t> seen;
    auto source = std::make_unique<SyntheticSource>();
    source->addComponent("cpu", [](double) { return 0.5; });
    Monitord daemon("m1", std::move(source),
                    [&](const proto::UtilizationUpdate &update) {
                        seen.push_back(update.sequence);
                    });
    daemon.tick(1.0);
    daemon.tick(2.0);
    daemon.tick(3.0);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 0u);
    EXPECT_EQ(seen[2], 2u);
}

TEST(MonitordBacklog, QueuesOfflineAndReplaysInOrder)
{
    std::vector<proto::UtilizationUpdate> delivered;
    auto source = std::make_unique<SyntheticSource>();
    source->addComponent("cpu", [](double t) { return t / 100.0; });
    Monitord daemon("m1", std::move(source),
                    [&](const proto::UtilizationUpdate &update) {
                        delivered.push_back(update);
                    });
    daemon.enableBacklog({8, Monitord::GapFillPolicy::Replay});

    daemon.tick(1.0);
    ASSERT_EQ(delivered.size(), 1u);

    // Solver gone: samples queue instead of shipping.
    daemon.setOnline(false);
    for (double t = 2.0; t <= 5.0; t += 1.0)
        daemon.tick(t);
    EXPECT_EQ(delivered.size(), 1u);
    EXPECT_EQ(daemon.backlogDepth(), 4u);

    // Reconnect: the whole history ships, oldest first, sequences
    // intact, with the backlog field counting down the queue.
    daemon.setOnline(true);
    ASSERT_EQ(delivered.size(), 5u);
    EXPECT_EQ(daemon.backlogDepth(), 0u);
    EXPECT_EQ(daemon.backlogReplayed(), 4u);
    EXPECT_EQ(daemon.backlogDropped(), 0u);
    for (size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i].sequence, i) << i;
    EXPECT_DOUBLE_EQ(delivered[1].utilization, 0.02);
    EXPECT_DOUBLE_EQ(delivered[4].utilization, 0.05);
    EXPECT_EQ(delivered[1].backlog, 3u);
    EXPECT_EQ(delivered[4].backlog, 0u);
}

TEST(MonitordBacklog, BoundedQueueDropsOldestAndCountsIt)
{
    std::vector<proto::UtilizationUpdate> delivered;
    auto source = std::make_unique<SyntheticSource>();
    source->addComponent("cpu", [](double t) { return t / 100.0; });
    Monitord daemon("m1", std::move(source),
                    [&](const proto::UtilizationUpdate &update) {
                        delivered.push_back(update);
                    });
    daemon.enableBacklog({3, Monitord::GapFillPolicy::Replay});
    daemon.setOnline(false);
    for (double t = 1.0; t <= 5.0; t += 1.0)
        daemon.tick(t);
    EXPECT_EQ(daemon.backlogDepth(), 3u);
    EXPECT_EQ(daemon.backlogDropped(), 2u);

    daemon.setOnline(true);
    ASSERT_EQ(delivered.size(), 3u);
    // The two oldest (sequences 0, 1) fell off: a truthful gap the
    // solver's loss accounting will report.
    EXPECT_EQ(delivered[0].sequence, 2u);
    EXPECT_EQ(delivered[2].sequence, 4u);
}

TEST(MonitordBacklog, HoldLastShipsOnlyTheNewestPerComponent)
{
    std::vector<proto::UtilizationUpdate> delivered;
    auto source = std::make_unique<SyntheticSource>();
    source->addComponent("cpu", [](double t) { return t / 100.0; });
    source->addComponent("disk", [](double t) { return t / 200.0; });
    Monitord daemon("m1", std::move(source),
                    [&](const proto::UtilizationUpdate &update) {
                        delivered.push_back(update);
                    });
    daemon.enableBacklog({16, Monitord::GapFillPolicy::HoldLast});
    daemon.setOnline(false);
    for (double t = 1.0; t <= 4.0; t += 1.0)
        daemon.tick(t);
    EXPECT_EQ(daemon.backlogDepth(), 8u);

    daemon.setOnline(true);
    // Two components, one (newest) sample each.
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0].component, "cpu");
    EXPECT_DOUBLE_EQ(delivered[0].utilization, 0.04);
    EXPECT_EQ(delivered[1].component, "disk");
    EXPECT_DOUBLE_EQ(delivered[1].utilization, 0.02);
    EXPECT_EQ(daemon.backlogDropped(), 6u);
    EXPECT_EQ(daemon.backlogReplayed(), 2u);
}

TEST(MonitordBacklog, SolverLossAccountingSeesReplayedSequences)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    proto::SolverService service(solver);

    auto source = std::make_unique<SyntheticSource>();
    source->addComponent("cpu", [](double t) { return t / 10.0; });
    Monitord daemon("m1", std::move(source),
                    Monitord::serviceSink(service));
    daemon.enableBacklog({64, Monitord::GapFillPolicy::Replay});

    daemon.tick(1.0);
    daemon.setOnline(false);
    for (double t = 2.0; t <= 6.0; t += 1.0)
        daemon.tick(t);
    daemon.setOnline(true);
    daemon.tick(7.0);

    // Every sequence arrived exactly once: no loss, no reorder, and
    // the last replayed value is live in the solver.
    EXPECT_EQ(service.updatesApplied(), 7u);
    EXPECT_DOUBLE_EQ(solver.machine("m1").utilization("cpu"), 0.7);
    std::string stats = service.statsLine();
    EXPECT_NE(stats.find("lost=0"), std::string::npos) << stats;
    EXPECT_NE(stats.find("blog=0"), std::string::npos) << stats;
}

TEST(ProcSource, SamplesThisLinuxHost)
{
    ProcSource source;
    if (!source.available())
        GTEST_SKIP() << "/proc not readable on this host";
    // First sample primes the deltas.
    auto first = source.sample(0.0);
    ASSERT_EQ(first.size(), 3u);
    for (const Reading &reading : first)
        EXPECT_DOUBLE_EQ(reading.utilization, 0.0);

    // Burn a little CPU so the second sample has signal.
    volatile double sink = 0.0;
    for (int i = 0; i < 20000000; ++i)
        sink = sink + std::sqrt(static_cast<double>(i));
    auto second = source.sample(1.0);
    ASSERT_EQ(second.size(), 3u);
    for (const Reading &reading : second) {
        EXPECT_GE(reading.utilization, 0.0);
        EXPECT_LE(reading.utilization, 1.0);
    }
    EXPECT_EQ(second[0].component, "cpu");
    EXPECT_GT(second[0].utilization, 0.0);
}

} // namespace
} // namespace monitor
} // namespace mercury
