/**
 * @file
 * Edge and failure-mode tests: every guarded precondition in the
 * public API must fail loudly (panic for internal misuse, fatal for
 * user errors) rather than corrupting an experiment silently.
 */

#include <gtest/gtest.h>

#include "cluster/dvfs.hh"
#include "core/fan.hh"
#include "core/solver.hh"
#include "core/thermal_graph.hh"
#include "core/trace.hh"
#include "fiddle/script.hh"
#include "graphdot/parser.hh"
#include "sensor/client.hh"
#include "sim/simulator.hh"
#include "util/csv.hh"
#include "util/flags.hh"
#include "util/stats.hh"

namespace mercury {
namespace {

TEST(EdgeStats, NonMonotonicTimeSeriesPanics)
{
    TimeSeries ts("t");
    ts.add(10.0, 1.0);
    EXPECT_DEATH(ts.add(5.0, 2.0), "non-monotonic");
}

TEST(EdgeStats, SampleOnEmptySeriesPanics)
{
    TimeSeries ts("t");
    EXPECT_DEATH(ts.sampleAt(1.0), "empty series");
}

TEST(EdgeStats, EmptyAccumulatorIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(EdgeStats, BadHistogramPanics)
{
    EXPECT_DEATH(Histogram(5.0, 5.0, 10), "bad range");
    EXPECT_DEATH(Histogram(0.0, 10.0, 0), "bad range");
}

TEST(EdgeCsv, ArityMismatchPanics)
{
    std::ostringstream out;
    CsvWriter writer(out, {"a", "b"});
    EXPECT_DEATH(writer.row({1.0}), "expected 2");
}

TEST(EdgeCsv, NoSeriesPanics)
{
    std::ostringstream out;
    EXPECT_DEATH(writeAlignedSeries(out, {}), "no series");
}

TEST(EdgeFlags, UnknownFlagIsFatal)
{
    FlagSet flags("prog", "test");
    flags.defineInt("n", 1, "num");
    const char *argv[] = {"prog", "--bogus", "3"};
    EXPECT_EXIT(flags.parse(3, argv), testing::ExitedWithCode(1),
                "unknown flag");
}

TEST(EdgeFlags, MalformedNumberIsFatal)
{
    FlagSet flags("prog", "test");
    flags.defineDouble("x", 1.0, "val");
    const char *argv[] = {"prog", "--x", "abc"};
    EXPECT_EXIT(flags.parse(3, argv), testing::ExitedWithCode(1),
                "bad number");
}

TEST(EdgeSim, PopOnEmptyQueuePanics)
{
    sim::EventQueue queue;
    EXPECT_DEATH(queue.pop(), "empty queue");
}

TEST(EdgeSim, SchedulingInThePastPanics)
{
    sim::Simulator simulator;
    simulator.at(sim::seconds(10), [] {});
    simulator.runToCompletion();
    EXPECT_DEATH(simulator.at(sim::seconds(5), [] {}), "before now");
    EXPECT_DEATH(simulator.after(-1, [] {}), "negative delay");
    EXPECT_DEATH(simulator.every(0, [] { return false; }),
                 "non-positive period");
}

TEST(EdgeCore, InvalidSpecPanics)
{
    core::MachineSpec spec = core::table1Server();
    spec.heatEdges.push_back({"cpu", "ghost", 1.0});
    EXPECT_DEATH(core::ThermalGraph graph(spec), "invalid machine spec");
}

TEST(EdgeCore, MissingEdgeMutationsPanic)
{
    core::ThermalGraph graph(core::table1Server());
    EXPECT_DEATH(graph.setHeatK("cpu", "disk_air", 1.0), "no heat edge");
    EXPECT_DEATH(graph.setAirFraction("cpu_air", "disk_air", 0.5),
                 "no air edge");
    EXPECT_DEATH(graph.setAirFraction("inlet", "disk_air", 1.5),
                 "outside");
    EXPECT_DEATH(graph.step(0.0), "non-positive dt");
    EXPECT_DEATH(graph.setFanCfm(-1.0), "negative");
    EXPECT_DEATH(graph.setUtilization("cpu_air", 0.5), "no power model");
}

TEST(EdgeCore, SolverMisusePanics)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    EXPECT_DEATH(solver.addMachine(core::table1Server("m1")),
                 "duplicate machine");
    EXPECT_DEATH(solver.machine("ghost"), "unknown machine");
    EXPECT_DEATH(solver.room(), "no room model");

    solver.setRoom(core::table1Room({"m1"}, 18.0));
    EXPECT_DEATH(solver.addMachine(core::table1Server("m2")),
                 "before installing the room");

    core::SolverConfig config;
    config.iterationSeconds = 0.0;
    EXPECT_DEATH(core::Solver bad(config), "non-positive iteration");
}

TEST(EdgeCore, TablePowerModelValidation)
{
    EXPECT_DEATH(core::TablePowerModel({{0.0, 1.0}}), "two points");
    EXPECT_DEATH(core::TablePowerModel({{0.0, 1.0}, {0.0, 2.0}}),
                 "non-increasing");
    EXPECT_DEATH(core::TablePowerModel({{0.1, 1.0}, {1.0, 2.0}}),
                 "cover");
}

TEST(EdgeCore, FanControllerValidation)
{
    core::ThermalGraph graph(core::table1Server());
    EXPECT_DEATH(core::FanController(graph, "ghost"), "no node");
    core::FanCurve bad;
    bad.highTemperature = bad.lowTemperature - 1.0;
    EXPECT_DEATH(core::FanController(graph, "cpu", bad),
                 "malformed fan curve");
}

TEST(EdgeCluster, DvfsValidation)
{
    sim::Simulator simulator;
    cluster::ServerMachine machine(simulator, "m1");
    auto read = [] { return 50.0; };
    cluster::DvfsConfig empty;
    empty.frequencies.clear();
    EXPECT_DEATH(
        cluster::DvfsGovernor(simulator, machine, read, nullptr, empty),
        "empty frequency ladder");
    cluster::DvfsConfig unsorted;
    unsorted.frequencies = {1.0, 0.5};
    EXPECT_DEATH(cluster::DvfsGovernor(simulator, machine, read, nullptr,
                                       unsorted),
                 "ascend");
    cluster::DvfsConfig inverted;
    inverted.triggerTemperature = 60.0;
    inverted.releaseTemperature = 65.0;
    EXPECT_DEATH(cluster::DvfsGovernor(simulator, machine, read, nullptr,
                                       inverted),
                 "below trigger");
    EXPECT_DEATH(machine.setCpuSpeed(0.0), "outside");
    EXPECT_DEATH(machine.setCpuSpeed(1.5), "outside");
}

TEST(EdgeIo, MissingFilesAreFatal)
{
    EXPECT_EXIT(core::UtilizationTrace::loadFile("/no/such/trace.csv"),
                testing::ExitedWithCode(1), "cannot open");
    EXPECT_EXIT(fiddle::FiddleScript::loadFile("/no/such/script"),
                testing::ExitedWithCode(1), "cannot open");
    EXPECT_EXIT(graphdot::loadConfigFile("/no/such/config.dot"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(EdgeSensor, NullTransportPanics)
{
    EXPECT_DEATH(sensor::SensorClient(nullptr, "m1"), "null transport");
}

TEST(EdgeTrace, RunnerMisusePanics)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    core::UtilizationTrace trace;
    trace.add(0.0, "m1", "cpu", 1.0);
    core::TraceRunner runner(solver, trace);
    runner.record("m1", "cpu");
    runner.run(5.0);
    EXPECT_DEATH(runner.run(5.0), "called twice");
    EXPECT_DEATH(runner.series("m1", "disk"), "was not recorded");
}

} // namespace
} // namespace mercury
