/**
 * @file
 * Determinism contract of the parallel stepping engine: within one
 * iteration machines only couple through the room model (a separate
 * serial phase), so fanning machine step() calls across the worker
 * pool must produce bitwise-identical temperatures to the serial
 * path, for any thread count. Also a ThreadSanitizer target: the CI
 * TSan job runs this binary to prove the fan-out really is race-free.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/solver.hh"

namespace mercury {
namespace core {
namespace {

/** Step a table1 cluster for `iterations`, varying load, and return
 *  every node temperature of every machine plus energy counters. */
std::vector<double>
runCluster(unsigned threads, int machines, int iterations)
{
    SolverConfig config;
    config.threads = threads;
    Solver solver(config);

    std::vector<std::string> names;
    for (int i = 0; i < machines; ++i)
        names.push_back("m" + std::to_string(i + 1));
    for (const std::string &name : names)
        solver.addMachine(table1Server(name));
    solver.setRoom(table1Room(names, 18.0));

    std::vector<Solver::NodeRef> cpus;
    for (const std::string &name : names)
        cpus.push_back(solver.resolveRef(name, "cpu"));

    for (int it = 0; it < iterations; ++it) {
        // Deterministic, machine-dependent load pattern so the
        // machines do not evolve in lock-step.
        for (size_t m = 0; m < cpus.size(); ++m) {
            double util = 0.5 + 0.5 * (((it + static_cast<int>(m)) % 10) /
                                       10.0);
            solver.setUtilization(cpus[m], util);
        }
        solver.iterate();
    }

    std::vector<double> out;
    for (const std::string &name : names) {
        const ThermalGraph &graph = solver.machine(name);
        std::vector<double> temps = graph.temperatures();
        out.insert(out.end(), temps.begin(), temps.end());
        out.push_back(graph.energyConsumed());
    }
    return out;
}

TEST(ParallelSolver, SerialAndParallelAreBitwiseIdentical)
{
    const int kMachines = 8;
    const int kIterations = 10000;
    std::vector<double> serial = runCluster(1, kMachines, kIterations);
    std::vector<double> parallel = runCluster(4, kMachines, kIterations);

    ASSERT_EQ(serial.size(), parallel.size());
    // Bitwise, not approximate: compare the raw representations.
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(double)),
              0);
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "index " << i;
}

TEST(ParallelSolver, OversubscribedPoolMatchesToo)
{
    // More executors than machines: workers go idle, results hold.
    std::vector<double> serial = runCluster(1, 3, 500);
    std::vector<double> wide = runCluster(16, 3, 500);
    ASSERT_EQ(serial.size(), wide.size());
    EXPECT_EQ(std::memcmp(serial.data(), wide.data(),
                          serial.size() * sizeof(double)),
              0);
}

TEST(ParallelSolver, AutoThreadCountMatchesSerial)
{
    // threads = 0 resolves to hardware_concurrency; whatever that is
    // on the host, the temperatures must not change.
    std::vector<double> serial = runCluster(1, 4, 1000);
    std::vector<double> automatic = runCluster(0, 4, 1000);
    ASSERT_EQ(serial.size(), automatic.size());
    EXPECT_EQ(std::memcmp(serial.data(), automatic.data(),
                          serial.size() * sizeof(double)),
              0);
}

} // namespace
} // namespace core
} // namespace mercury
