/**
 * @file
 * Tests for the power models (equations 3-4 and the perf-counter
 * variant of Section 2.3).
 */

#include <gtest/gtest.h>

#include "core/power.hh"

namespace mercury {
namespace core {
namespace {

TEST(LinearPowerModel, EndpointsAndMidpoint)
{
    LinearPowerModel model(7.0, 31.0);
    EXPECT_DOUBLE_EQ(model.power(0.0), 7.0);
    EXPECT_DOUBLE_EQ(model.power(1.0), 31.0);
    EXPECT_DOUBLE_EQ(model.power(0.5), 19.0);
    EXPECT_DOUBLE_EQ(model.basePower(), 7.0);
    EXPECT_DOUBLE_EQ(model.maxPower(), 31.0);
}

TEST(LinearPowerModel, ClampsUtilization)
{
    LinearPowerModel model(10.0, 20.0);
    EXPECT_DOUBLE_EQ(model.power(-0.5), 10.0);
    EXPECT_DOUBLE_EQ(model.power(2.0), 20.0);
}

TEST(LinearPowerModel, ConstantPowerComponent)
{
    // The Table 1 power supply draws 40 W regardless of load.
    LinearPowerModel model(40.0, 40.0);
    EXPECT_DOUBLE_EQ(model.power(0.0), 40.0);
    EXPECT_DOUBLE_EQ(model.power(0.7), 40.0);
}

TEST(LinearPowerModel, SetRange)
{
    LinearPowerModel model(5.0, 10.0);
    model.setRange(6.0, 12.0);
    EXPECT_DOUBLE_EQ(model.power(1.0), 12.0);
}

TEST(TablePowerModel, InterpolatesBetweenPoints)
{
    TablePowerModel model({{0.0, 10.0}, {0.5, 30.0}, {1.0, 35.0}});
    EXPECT_DOUBLE_EQ(model.power(0.0), 10.0);
    EXPECT_DOUBLE_EQ(model.power(0.25), 20.0);
    EXPECT_DOUBLE_EQ(model.power(0.5), 30.0);
    EXPECT_DOUBLE_EQ(model.power(0.75), 32.5);
    EXPECT_DOUBLE_EQ(model.power(1.0), 35.0);
}

TEST(TablePowerModel, ClampsOutsideRange)
{
    TablePowerModel model({{0.0, 10.0}, {1.0, 20.0}});
    EXPECT_DOUBLE_EQ(model.power(-1.0), 10.0);
    EXPECT_DOUBLE_EQ(model.power(3.0), 20.0);
}

TEST(PerfCounterPowerModel, IdleIntervalBurnsBasePower)
{
    PerfCounterPowerModel model = pentium4CounterModel(10.0, 55.0);
    std::vector<uint64_t> counts(model.eventCount(), 0);
    EXPECT_DOUBLE_EQ(model.intervalPower(counts, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(model.lowLevelUtilization(10.0), 0.0);
}

TEST(PerfCounterPowerModel, EventsAddEnergy)
{
    std::vector<PerfCounterPowerModel::EventClass> events{
        {"uops", 10.0}, // 10 nJ per event
    };
    PerfCounterPowerModel model(events, 5.0, 25.0);
    // 1e9 events at 10 nJ each = 10 J over 1 s = 10 W on top of base.
    std::vector<uint64_t> counts{1000000000ULL};
    EXPECT_NEAR(model.intervalEnergy(counts, 1.0), 15.0, 1e-9);
    EXPECT_NEAR(model.intervalPower(counts, 1.0), 15.0, 1e-9);
    EXPECT_NEAR(model.lowLevelUtilization(15.0), 0.5, 1e-12);
}

TEST(PerfCounterPowerModel, UtilizationClampsAtPmax)
{
    PerfCounterPowerModel model = pentium4CounterModel(10.0, 55.0);
    EXPECT_DOUBLE_EQ(model.lowLevelUtilization(1000.0), 1.0);
    EXPECT_DOUBLE_EQ(model.lowLevelUtilization(0.0), 0.0);
}

TEST(PerfCounterPowerModel, LongerIntervalLowersPower)
{
    PerfCounterPowerModel model = pentium4CounterModel(10.0, 55.0);
    std::vector<uint64_t> counts(model.eventCount(), 0);
    counts[0] = 500000000ULL;
    double p1 = model.intervalPower(counts, 1.0);
    double p2 = model.intervalPower(counts, 2.0);
    EXPECT_GT(p1, p2);
    EXPECT_GT(p2, model.basePower() - 1e-9);
}

TEST(PerfCounterPowerModel, FullLoadSyntheticP4NearsMaxPower)
{
    PerfCounterPowerModel model = pentium4CounterModel(10.0, 55.0);
    // A saturated synthetic P4: ~2e9 uops/s, heavy memory traffic.
    std::vector<uint64_t> counts{2000000000ULL, 40000000ULL, 60000000ULL,
                                 50000000ULL};
    double power = model.intervalPower(counts, 1.0);
    EXPECT_GT(power, 40.0);
    double util = model.lowLevelUtilization(power);
    EXPECT_GT(util, 0.7);
    EXPECT_LE(util, 1.0);
}

} // namespace
} // namespace core
} // namespace mercury
