/**
 * @file
 * End-to-end tests of the deployed shape over real UDP: monitord
 * ships utilization updates to a live SolverDaemon, the sensor
 * library reads temperatures back, and fiddle injects an emergency —
 * the full Figure 2 data flow in one process.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "core/solver.hh"
#include "graphdot/parser.hh"
#include "monitor/monitord.hh"
#include "proto/solver_daemon.hh"
#include "sensor/client.hh"
#include "sensor/sensor_api.hh"

#ifndef MERCURY_CONFIG_DIR
#define MERCURY_CONFIG_DIR "configs"
#endif

namespace mercury {
namespace {

TEST(DaemonE2E, MonitordSensorAndFiddleOverUdp)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));

    proto::SolverDaemon::Config config;
    config.port = 0;
    config.iterationSeconds = 0.0; // stepped manually below
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });

    // monitord with a synthetic source, shipping over real UDP.
    auto source = std::make_unique<monitor::SyntheticSource>();
    source->addComponent("cpu", [](double) { return 0.8; });
    source->addComponent("disk", [](double) { return 0.3; });
    auto socket = std::make_shared<net::UdpSocket>();
    net::Endpoint endpoint{*net::resolveHost("127.0.0.1"), daemon.port()};
    monitor::Monitord monitord(
        "m1", std::move(source),
        monitor::Monitord::udpSink(socket, endpoint));
    monitord.tick(1.0);

    // UDP is asynchronous: wait for the updates to land.
    for (int i = 0; i < 200; ++i) {
        if (daemon.service().updatesApplied() >= 2)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(daemon.service().updatesApplied(), 2u);
    EXPECT_DOUBLE_EQ(solver.machine("m1").utilization("cpu"), 0.8);
    EXPECT_DOUBLE_EQ(
        solver.machine("m1").utilization("disk_platters"), 0.3);

    // Sensor read over the same socket family.
    sensor::SensorClient client(
        std::make_unique<sensor::UdpTransport>("127.0.0.1",
                                               daemon.port()),
        "m1");
    auto before = client.read("cpu");
    ASSERT_TRUE(before.has_value());

    // Fiddle an emergency, step the solver, watch the CPU heat up.
    auto [ok, message] = client.fiddle("m1 temperature inlet 35");
    ASSERT_TRUE(ok) << message;
    for (int i = 0; i < 2000; ++i)
        solver.iterate();
    auto after = client.read("cpu");
    ASSERT_TRUE(after.has_value());
    EXPECT_GT(*after, *before + 5.0);

    daemon.stop();
    server.join();
}

TEST(DaemonE2E, ShmFastPathAgreesWithUdpAndSurvivesWriterDeath)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    solver.setUtilization("m1", "cpu", 1.0);
    solver.run(5000.0);

    std::string shm_name =
        "/mercury.e2e." + std::to_string(::getpid());

    // Two daemons serve the same solver: one publishes the telemetry
    // segment, the other stays shm-less so UDP keeps answering after
    // the writer dies.
    proto::SolverDaemon::Config with_shm;
    with_shm.port = 0;
    with_shm.iterationSeconds = 0.0;
    with_shm.shmName = shm_name;
    auto publisher =
        std::make_unique<proto::SolverDaemon>(solver, with_shm);
    ASSERT_NE(publisher->telemetryWriter(), nullptr);
    std::thread publisher_thread([&] { publisher->run(); });

    proto::SolverDaemon::Config plain;
    plain.port = 0;
    plain.iterationSeconds = 0.0;
    proto::SolverDaemon fallback(solver, plain);
    EXPECT_EQ(fallback.telemetryWriter(), nullptr);
    std::thread fallback_thread([&] { fallback.run(); });

    ::setenv("MERCURY_SHM_NAME", shm_name.c_str(), 1);

    // Shm enabled: the segment answers, no datagram leaves the box.
    int sd = opensensor_for("127.0.0.1", fallback.port(), "m1", "cpu");
    ASSERT_GE(sd, 0);
    float via_shm = readsensor(sd);
    ASSERT_FALSE(std::isnan(via_shm));
    EXPECT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_SHM);

    // Shm disabled by the environment: same call over real UDP.
    ::setenv("MERCURY_NO_SHM", "1", 1);
    int sd_udp = opensensor_for("127.0.0.1", fallback.port(), "m1",
                                "cpu");
    ::unsetenv("MERCURY_NO_SHM");
    ASSERT_GE(sd_udp, 0);
    float via_udp = readsensor(sd_udp);
    ASSERT_FALSE(std::isnan(via_udp));
    EXPECT_EQ(sensorpath(sd_udp), MERCURY_SENSOR_PATH_UDP);
    EXPECT_FLOAT_EQ(via_shm, via_udp);

    // Kill the writer: the open descriptor silently degrades to UDP
    // and keeps reporting the same temperature.
    publisher->stop();
    publisher_thread.join();
    publisher.reset();
    float after_death = readsensor(sd);
    ASSERT_FALSE(std::isnan(after_death));
    EXPECT_EQ(sensorpath(sd), MERCURY_SENSOR_PATH_UDP);
    EXPECT_FLOAT_EQ(after_death, via_shm);

    ::unsetenv("MERCURY_SHM_NAME");
    closesensor(sd);
    closesensor(sd_udp);
    fallback.stop();
    fallback_thread.join();
}

TEST(DaemonE2E, DaemonStepsInWallClockTime)
{
    core::Solver solver;
    solver.addMachine(core::table1Server("m1"));
    solver.setUtilization("m1", "cpu", 1.0);

    proto::SolverDaemon::Config config;
    config.port = 0;
    config.iterationSeconds = 0.02; // fast wall-clock stepping
    proto::SolverDaemon daemon(solver, config);
    std::thread server([&] { daemon.run(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    daemon.stop();
    server.join();
    // ~15 iterations expected; accept a broad band (CI jitter).
    EXPECT_GE(solver.iterations(), 5u);
    EXPECT_LE(solver.iterations(), 60u);
}

TEST(ShippedConfigs, Table1ServerFileMatchesBuiltin)
{
    core::ConfigSpec config = graphdot::loadConfigFile(
        std::string(MERCURY_CONFIG_DIR) + "/table1_server.dot");
    ASSERT_EQ(config.machines.size(), 1u);
    EXPECT_FALSE(config.room.has_value());

    core::MachineSpec expected = core::table1Server("server");
    const core::MachineSpec &loaded = config.machines[0];
    EXPECT_EQ(loaded.name, expected.name);
    EXPECT_DOUBLE_EQ(loaded.fanCfm, expected.fanCfm);
    EXPECT_DOUBLE_EQ(loaded.inletTemperature, expected.inletTemperature);
    ASSERT_EQ(loaded.nodes.size(), expected.nodes.size());
    ASSERT_EQ(loaded.heatEdges.size(), expected.heatEdges.size());
    ASSERT_EQ(loaded.airEdges.size(), expected.airEdges.size());
    for (const core::NodeSpec &node : expected.nodes) {
        const core::NodeSpec *copy = loaded.findNode(node.name);
        ASSERT_NE(copy, nullptr) << node.name;
        EXPECT_EQ(copy->kind, node.kind) << node.name;
        EXPECT_DOUBLE_EQ(copy->mass, node.mass) << node.name;
        EXPECT_DOUBLE_EQ(copy->specificHeat, node.specificHeat)
            << node.name;
        EXPECT_EQ(copy->hasPower, node.hasPower) << node.name;
        EXPECT_DOUBLE_EQ(copy->minPower, node.minPower) << node.name;
        EXPECT_DOUBLE_EQ(copy->maxPower, node.maxPower) << node.name;
    }
    for (const core::HeatEdgeSpec &edge : expected.heatEdges) {
        bool found = false;
        for (const core::HeatEdgeSpec &candidate : loaded.heatEdges) {
            if (candidate.a == edge.a && candidate.b == edge.b) {
                EXPECT_DOUBLE_EQ(candidate.k, edge.k)
                    << edge.a << "--" << edge.b;
                found = true;
            }
        }
        EXPECT_TRUE(found) << edge.a << "--" << edge.b;
    }
}

TEST(ShippedConfigs, Table1ClusterFileBuildsAWorkingSolver)
{
    core::ConfigSpec config = graphdot::loadConfigFile(
        std::string(MERCURY_CONFIG_DIR) + "/table1_cluster.dot");
    ASSERT_EQ(config.machines.size(), 4u);
    ASSERT_TRUE(config.room.has_value());

    core::Solver solver;
    for (const core::MachineSpec &machine : config.machines)
        solver.addMachine(machine);
    solver.setRoom(*config.room);
    solver.setUtilization("m2", "cpu", 1.0);
    solver.run(5000.0);
    EXPECT_NEAR(solver.machine("m1").inletTemperature(), 18.0, 1e-9);
    EXPECT_GT(solver.temperature("m2", "cpu"),
              solver.temperature("m3", "cpu") + 5.0);
    EXPECT_GT(solver.room().temperature("cluster_exhaust"), 18.0);
}

} // namespace
} // namespace mercury
