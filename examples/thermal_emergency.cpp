/**
 * @file
 * Thermal emergencies with fiddle (the paper's Figure 4): a script
 * raises machine1's inlet air to 30 degC 100 seconds into the run —
 * "simulating the failure of an air conditioner" — and restores the
 * cooling 200 seconds later. The whole scenario is scheduled on the
 * discrete-event simulator, so it is exactly repeatable.
 *
 * Run:  ./examples/thermal_emergency
 */

#include <cstdio>

#include "core/solver.hh"
#include "fiddle/script.hh"
#include "sim/simulator.hh"

int
main()
{
    using namespace mercury;

    core::Solver solver;
    solver.addMachine(core::table1Server("machine1"));
    solver.setUtilization("machine1", "cpu", 0.8);
    solver.setUtilization("machine1", "disk", 0.4);

    // The exact script from the paper's Figure 4.
    const char *script_text =
        "#!/bin/bash\n"
        "sleep 100\n"
        "fiddle machine1 temperature inlet 30\n"
        "sleep 200\n"
        "fiddle machine1 temperature inlet 21.6\n";

    std::vector<std::string> errors;
    fiddle::FiddleScript script =
        fiddle::FiddleScript::parse(script_text, &errors);
    if (!errors.empty()) {
        std::fprintf(stderr, "script error: %s\n", errors[0].c_str());
        return 1;
    }

    sim::Simulator simulator;
    script.scheduleOn(simulator, solver);

    // Step the solver once per emulated second, sampling every 20 s.
    simulator.every(sim::seconds(1.0), [&] {
        solver.iterate();
        return true;
    });

    std::printf("time_s  inlet_C  cpu_air_C  cpu_C   disk_C\n");
    simulator.every(sim::seconds(20.0), [&] {
        std::printf("%6.0f  %7.2f  %9.2f  %6.2f  %6.2f\n",
                    simulator.nowSeconds(),
                    solver.machine("machine1").inletTemperature(),
                    solver.temperature("machine1", "cpu_air"),
                    solver.temperature("machine1", "cpu"),
                    solver.temperature("machine1", "disk"));
        return true;
    });

    simulator.runUntil(sim::seconds(600));
    std::printf("\nThe inlet step at t=100 s propagates into every "
                "component; cooling returns at t=300 s.\n");
    return 0;
}
