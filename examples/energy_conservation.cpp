/**
 * @file
 * Freon-EC (Section 4.2): combine thermal management with energy
 * conservation. The example contrasts the always-on Freon base policy
 * with Freon-EC on the same diurnal trace and emergencies, reporting
 * energy, drops and how the active configuration breathed with the
 * load.
 *
 * Run:  ./examples/energy_conservation
 */

#include <cstdio>

#include "freon/experiment.hh"

int
main()
{
    using namespace mercury;

    freon::ExperimentConfig base_config;
    base_config.policy = freon::PolicyKind::FreonBase;
    base_config.workload.duration = 2000.0;
    base_config.addPaperEmergencies();

    freon::ExperimentConfig ec_config = base_config;
    ec_config.policy = freon::PolicyKind::FreonEC;
    // Region 0 holds m1 and m3 (the machines sharing the failing AC),
    // region 1 holds m2 and m4 — replacements come from the healthy
    // region when possible.
    ec_config.regionOf = {{"m1", 0}, {"m3", 0}, {"m2", 1}, {"m4", 1}};

    std::printf("running always-on Freon and Freon-EC...\n\n");
    freon::ExperimentResult base = freon::runExperiment(base_config);
    freon::ExperimentResult ec = freon::runExperiment(ec_config);

    std::printf("%-22s %14s %14s\n", "", "Freon", "Freon-EC");
    std::printf("%-22s %14.0f %14.0f\n", "energy (J)", base.energyJoules,
                ec.energyJoules);
    std::printf("%-22s %14.2f %14.2f\n", "mean cluster power (W)",
                base.clusterPower.meanValue(), ec.clusterPower.meanValue());
    std::printf("%-22s %14llu %14llu\n", "dropped requests",
                static_cast<unsigned long long>(base.dropped),
                static_cast<unsigned long long>(ec.dropped));
    std::printf("%-22s %14.0f %14.0f\n", "min active servers",
                base.activeServers.minValue(),
                ec.activeServers.minValue());
    std::printf("%-22s %14llu %14llu\n", "power-downs",
                static_cast<unsigned long long>(base.serversTurnedOff),
                static_cast<unsigned long long>(ec.serversTurnedOff));
    std::printf("\nenergy saved by Freon-EC: %.1f%%\n",
                100.0 * (1.0 - ec.energyJoules / base.energyJoules));

    std::printf("\nactive servers over time (Freon-EC):\n");
    for (double t = 100.0; t <= 2000.0; t += 100.0) {
        int active = static_cast<int>(ec.activeServers.sampleAt(t) + 0.5);
        std::printf("  t=%4.0f  %d  ", t, active);
        for (int i = 0; i < active; ++i)
            std::printf("#");
        std::printf("\n");
    }
    return 0;
}
