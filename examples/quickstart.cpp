/**
 * @file
 * Quickstart: emulate the paper's Table 1 server and read its
 * temperatures exactly like Figure 3 does — through the
 * opensensor()/readsensor()/closesensor() API — while a synthetic
 * load heats the CPU.
 *
 * Run:  ./examples/quickstart
 */

#include <cstdio>

#include "core/solver.hh"
#include "core/spec.hh"
#include "proto/solver_service.hh"
#include "sensor/sensor_api.hh"

int
main()
{
    using namespace mercury;

    // 1. Build the emulated machine: the paper's Pentium III server
    //    with its Table 1 constants (you can also load a .dot config
    //    via graphdot::loadConfigFile).
    core::Solver solver;
    solver.addMachine(core::table1Server("server1"));

    // 2. Expose it through the message-level sensor interface and
    //    install it as the process-local solver so the classic C API
    //    works without a network.
    proto::SolverService service(solver);
    installLocalSolver(&service);

    // 3. Figure 3, almost verbatim.
    int sd = opensensor_for("local", 8367, "server1", "disk");
    int cpu_sd = opensensor_for("local", 8367, "server1", "cpu");

    std::printf("time_s  cpu_util  cpu_C   disk_C\n");
    for (int minute = 0; minute <= 30; ++minute) {
        // Load steps: idle -> busy -> idle again.
        double utilization = (minute >= 5 && minute < 20) ? 0.9 : 0.05;
        solver.setUtilization("server1", "cpu", utilization);
        solver.setUtilization("server1", "disk", utilization * 0.5);
        solver.run(60.0); // one emulated minute

        float disk_temp = readsensor(sd);
        float cpu_temp = readsensor(cpu_sd);
        std::printf("%6.0f  %8.2f  %6.2f  %6.2f\n",
                    solver.emulatedSeconds(), utilization, cpu_temp,
                    disk_temp);
    }

    closesensor(sd);
    closesensor(cpu_sd);
    installLocalSolver(nullptr);
    return 0;
}
