/**
 * @file
 * Chip-multiprocessor emulation — the two-level approach sketched in
 * the paper's Section 7 ("the emulation of chip multiprocessors ...
 * will probably have to be done in two levels, for each core and the
 * entire chip"): four per-core lumps conduct into a shared package
 * lump, which convects into the case air stream. An asymmetric load
 * shows per-core gradients on top of the package temperature.
 *
 * Run:  ./examples/cmp_package
 */

#include <cstdio>

#include "core/thermal_graph.hh"

namespace {

using namespace mercury;

/** Four cores + shared package inside a simple case air path. */
core::MachineSpec
cmpMachine()
{
    core::MachineSpec spec;
    spec.name = "cmp";
    spec.inletTemperature = 21.6;
    spec.fanCfm = 30.0;
    spec.initialTemperature = 21.6;

    auto solid = [](const char *name, double mass, double c, double pmin,
                    double pmax, bool powered) {
        core::NodeSpec node;
        node.name = name;
        node.kind = core::NodeKind::Component;
        node.mass = mass;
        node.specificHeat = c;
        node.minPower = pmin;
        node.maxPower = pmax;
        node.hasPower = powered;
        return node;
    };
    // Level 1: small per-core lumps (die area slices).
    for (int i = 0; i < 4; ++i) {
        std::string name = "core" + std::to_string(i);
        spec.nodes.push_back(
            solid(name.c_str(), 0.004, 700.0, 2.0, 18.0, true));
    }
    // Level 2: the package + heat sink.
    spec.nodes.push_back(solid("package", 0.15, 896.0, 3.0, 3.0, true));

    auto air = [](const char *name, core::NodeKind kind) {
        core::NodeSpec node;
        node.name = name;
        node.kind = kind;
        return node;
    };
    spec.nodes.push_back(air("inlet", core::NodeKind::Inlet));
    spec.nodes.push_back(air("chip_air", core::NodeKind::Air));
    spec.nodes.push_back(air("exhaust", core::NodeKind::Exhaust));

    // Cores conduct strongly into the shared package, weakly into
    // each other (lateral die conduction between neighbours).
    for (int i = 0; i < 4; ++i) {
        spec.heatEdges.push_back(
            {"core" + std::to_string(i), "package", 8.0});
        if (i > 0) {
            spec.heatEdges.push_back({"core" + std::to_string(i - 1),
                                      "core" + std::to_string(i), 1.5});
        }
    }
    spec.heatEdges.push_back({"package", "chip_air", 1.2});

    spec.airEdges.push_back({"inlet", "chip_air", 1.0});
    spec.airEdges.push_back({"chip_air", "exhaust", 1.0});
    return spec;
}

} // namespace

int
main()
{
    core::ThermalGraph chip(cmpMachine());

    // Asymmetric load: core0 pinned busy, core3 idle, 1/2 in between —
    // a scheduler could use these gradients for thermal-aware
    // placement (cf. Powell et al.'s heat-and-run).
    chip.setUtilization("core0", 1.0);
    chip.setUtilization("core1", 0.6);
    chip.setUtilization("core2", 0.3);
    chip.setUtilization("core3", 0.0);

    std::printf("time_s  core0   core1   core2   core3   package  "
                "chip_air\n");
    for (int step = 0; step <= 20; ++step) {
        for (int i = 0; i < 60; ++i)
            chip.step(1.0);
        std::printf("%6d  %6.2f  %6.2f  %6.2f  %6.2f  %7.2f  %8.2f\n",
                    (step + 1) * 60, chip.temperature("core0"),
                    chip.temperature("core1"), chip.temperature("core2"),
                    chip.temperature("core3"),
                    chip.temperature("package"),
                    chip.temperature("chip_air"));
    }

    std::printf("\ncore0 runs %.1f degC hotter than core3 on the same "
                "package.\n",
                chip.temperature("core0") - chip.temperature("core3"));
    return 0;
}
