/**
 * @file
 * The Section 3.1 calibration recipe, as a user would run it:
 *
 *  1. run a CPU and a disk microbenchmark on the "real machine"
 *     (here: the bundled high-fidelity reference model, read through
 *     its noisy sensors — on a real deployment this would be
 *     monitord --record plus your thermometers);
 *  2. tune the Table 1 heat constants until Mercury reproduces the
 *     measurements ("taking one of us less than an hour"; the
 *     coordinate-descent calibrator needs a few seconds);
 *  3. freeze the inputs and validate on an unseen mixed workload.
 *
 * Run:  ./examples/offline_calibration
 */

#include <cmath>
#include <cstdio>

#include "calib/validation.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::calib;

    std::printf("1) running the calibration microbenchmarks on the "
                "reference machine (2 x %.0f s)...\n",
                kCalibrationDuration);
    refmodel::ReferenceConfig real_machine; // noisy, quantized sensors

    std::printf("2) tuning the Table 1 heat constants...\n");
    CalibrationResult calibration =
        calibrateTable1AgainstReference(real_machine);
    std::printf("   mean error %.2f -> %.2f degC after %d objective "
                "evaluations\n",
                calibration.initialError, calibration.finalError,
                calibration.evaluations);
    for (const core::HeatEdgeSpec &edge : calibration.spec.heatEdges) {
        core::MachineSpec original = core::table1Server();
        for (const core::HeatEdgeSpec &base : original.heatEdges) {
            if (base.a == edge.a && base.b == edge.b &&
                std::abs(base.k - edge.k) > 1e-9) {
                std::printf("   k(%s -- %s): %.3f -> %.3f W/K\n",
                            edge.a.c_str(), edge.b.c_str(), base.k,
                            edge.k);
            }
        }
    }

    std::printf("3) validating on the unseen mixed benchmark "
                "(%.0f s, inputs frozen)...\n",
                kValidationDuration);
    ReferenceRun truth = runReference(
        real_machine, kValidationDuration,
        {{"cpu", validationCpuWaveform()},
         {"disk", validationDiskWaveform()}},
        {"cpu_air", "disk_platters"}, /*use_sensors=*/false);

    Experiment mixed;
    mixed.duration = kValidationDuration;
    mixed.loads.emplace_back("cpu", validationCpuWaveform());
    mixed.loads.emplace_back("disk_platters", validationDiskWaveform());
    std::vector<TimeSeries> emulated = simulateExperiment(
        calibration.spec, mixed, {"cpu_air", "disk_platters"});

    double cpu_err =
        emulated[0].maxAbsError(truth.temperatures.at("cpu_air"));
    double disk_err =
        emulated[1].maxAbsError(truth.temperatures.at("disk_platters"));
    std::printf("   max error: cpu_air %.2f degC, disk %.2f degC\n",
                cpu_err, disk_err);
    std::printf("   (the paper reports <= 1 degC for both)\n");
    return cpu_err < 1.0 && disk_err < 1.0 ? 0 : 1;
}
