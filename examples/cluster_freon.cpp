/**
 * @file
 * The paper's Section 5 scenario as a library user would run it: four
 * emulated Apache servers behind a weighted-least-connections LVS, a
 * diurnal trace with 30% CGI requests, cooling emergencies on two
 * machines, and Freon's base policy keeping temperatures under the
 * threshold without dropping requests.
 *
 * Run:  ./examples/cluster_freon
 */

#include <cstdio>

#include "freon/experiment.hh"

int
main()
{
    using namespace mercury;

    freon::ExperimentConfig config;
    config.policy = freon::PolicyKind::FreonBase;
    config.workload.duration = 2000.0;
    config.addPaperEmergencies();

    std::printf("running the Figure 11 scenario (4 servers, Freon base "
                "policy)...\n\n");
    freon::ExperimentResult result = freon::runExperiment(config);

    std::printf("requests: %llu submitted, %llu completed, %llu "
                "dropped (%.2f%%)\n",
                static_cast<unsigned long long>(result.submitted),
                static_cast<unsigned long long>(result.completed),
                static_cast<unsigned long long>(result.dropped),
                100.0 * result.dropRate);
    std::printf("load-balancer weight adjustments: %llu\n",
                static_cast<unsigned long long>(result.weightAdjustments));
    std::printf("servers powered off: %llu\n\n",
                static_cast<unsigned long long>(result.serversTurnedOff));

    std::printf("machine  peak_cpu_C  first_over_Th_s\n");
    for (const auto &[name, peak] : result.peakCpuTemperature) {
        std::printf("%-7s  %10.2f  %15.0f\n", name.c_str(), peak,
                    result.firstTimeOverHigh.at(name));
    }

    std::printf("\nCPU temperature every 200 s:\n  time");
    for (const auto &[name, series] : result.cpuTemperature)
        std::printf("  %6s", name.c_str());
    std::printf("\n");
    for (double t = 200.0; t <= 2000.0; t += 200.0) {
        std::printf("  %4.0f", t);
        for (const auto &[name, series] : result.cpuTemperature)
            std::printf("  %6.2f", series.sampleAt(t));
        std::printf("\n");
    }
    return 0;
}
