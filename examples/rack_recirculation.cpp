/**
 * @file
 * Rack recirculation: "Recirculation and rack layout effects can also
 * be represented using more complex graphs" (Section 2.2).
 *
 * An eight-machine rack draws cold air from the floor; each machine
 * above the first also ingests a slice of the exhaust of the machine
 * below it. The classic result is a temperature gradient up the rack
 * — the paper's motivating "hot spots at the top sections of computer
 * racks" — which this example reproduces purely from the room graph.
 *
 * Run:  ./examples/rack_recirculation
 */

#include <cstdio>

#include "core/solver.hh"

int
main()
{
    using namespace mercury;

    constexpr int kRackHeight = 8;
    constexpr double kRecirculation = 0.25; // slice of the lower
                                            // neighbour's exhaust

    core::Solver solver;
    std::vector<std::string> names;
    for (int i = 0; i < kRackHeight; ++i) {
        names.push_back("u" + std::to_string(i + 1)); // u1 = bottom
        solver.addMachine(core::table1Server(names.back()));
    }

    // Room graph: the AC feeds every machine, but machines above the
    // bottom slot mix in part of the exhaust rising from below.
    core::RoomSpec room;
    room.name = "rack";
    core::RoomNodeSpec ac;
    ac.name = "ac";
    ac.kind = core::RoomNodeKind::Source;
    ac.temperature = 18.0;
    room.nodes.push_back(ac);
    for (const std::string &name : names) {
        core::RoomNodeSpec node;
        node.name = name;
        node.kind = core::RoomNodeKind::Machine;
        node.machine = name;
        room.nodes.push_back(node);
    }
    core::RoomNodeSpec sink;
    sink.name = "return";
    sink.kind = core::RoomNodeKind::Sink;
    room.nodes.push_back(sink);

    double ac_share = 1.0 / kRackHeight;
    for (int i = 0; i < kRackHeight; ++i) {
        room.edges.push_back({"ac", names[i], ac_share});
        if (i + 1 < kRackHeight) {
            room.edges.push_back(
                {names[i], names[i + 1], kRecirculation});
            room.edges.push_back(
                {names[i], "return", 1.0 - kRecirculation});
        } else {
            room.edges.push_back({names[i], "return", 1.0});
        }
    }
    solver.setRoom(room);

    // Uniform 60% CPU load across the rack.
    for (const std::string &name : names)
        solver.setUtilization(name, "cpu", 0.6);
    solver.run(30000.0);

    std::printf("slot   inlet_C  cpu_C   (bottom to top)\n");
    for (int i = 0; i < kRackHeight; ++i) {
        std::printf("%-5s  %7.2f  %6.2f  %s\n", names[i].c_str(),
                    solver.machine(names[i]).inletTemperature(),
                    solver.temperature(names[i], "cpu"),
                    std::string(static_cast<size_t>(
                                    solver.temperature(names[i], "cpu") -
                                    40.0),
                                '#')
                        .c_str());
    }
    std::printf("\nTop-of-rack penalty: %.2f degC (u%d vs u1) from "
                "%.0f%% recirculation.\n",
                solver.temperature(names[kRackHeight - 1], "cpu") -
                    solver.temperature(names[0], "cpu"),
                kRackHeight, 100.0 * kRecirculation);
    return 0;
}
