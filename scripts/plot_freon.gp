# Regenerate Figure 11/12's temperature panel from the bench CSV.
#
#   build/bench/bench_fig11_freon_base > fig11.txt
#   awk '/CPU temperatures/{f=1;next} /CPU utilizations/{f=0} \
#        f && !/^#/' fig11.txt > fig11_temps.csv
#   gnuplot -e "csv='fig11_temps.csv'; out='fig11.png'; th=74; tr=76" \
#       scripts/plot_freon.gp

if (!exists("csv")) csv = "fig11_temps.csv"
if (!exists("out")) out = "fig11.png"
if (!exists("th")) th = 74.0
if (!exists("tr")) tr = 76.0

set terminal pngcairo size 1000,500
set output out
set datafile separator ","
set key top left
set xlabel "time (seconds)"
set ylabel "CPU temperature (C)"
set yrange [20:80]

set arrow from graph 0, first th to graph 1, first th nohead \
    lc rgb "#888888" dt 2
set arrow from graph 0, first tr to graph 1, first tr nohead \
    lc rgb "#cc0000" dt 3

plot csv using 1:2 skip 1 with lines title "m1", \
     csv using 1:3 skip 1 with lines title "m2", \
     csv using 1:4 skip 1 with lines title "m3", \
     csv using 1:5 skip 1 with lines title "m4"
