#!/usr/bin/env sh
# Run the metrics hot-path benchmarks and record the results as
# machine-readable JSON at the repo root (BENCH_metrics.json). Then
# enforce the instrumentation budget: one uncontended counter
# increment must cost less than MERCURY_COUNTER_INC_NS (default 50)
# nanoseconds, so sprinkling counters through daemon hot loops stays
# free.
#
#   scripts/run_bench_metrics.sh [build-dir] [extra benchmark args...]
#
# Examples:
#   scripts/run_bench_metrics.sh
#   scripts/run_bench_metrics.sh build --benchmark_min_time=0.1s
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bench="$build_dir/bench/bench_metrics"
if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build_dir)" >&2
    exit 1
fi

out="$repo_root/BENCH_metrics.json"
"$bench" --benchmark_format=json --benchmark_out="$out" \
    --benchmark_out_format=json "$@" >&2
echo "$out"

inc_ceiling=${MERCURY_COUNTER_INC_NS:-50}
python3 - "$out" "$inc_ceiling" <<'EOF'
import json
import sys

path, ceiling = sys.argv[1], float(sys.argv[2])
with open(path) as handle:
    report = json.load(handle)

times = {}
for bench in report.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    name = bench["name"]
    nanos = bench["real_time"]
    if bench.get("time_unit") == "us":
        nanos *= 1e3
    elif bench.get("time_unit") == "ms":
        nanos *= 1e6
    times[name] = nanos

inc = times.get("BM_CounterInc")
if inc is None:
    sys.exit("error: BM_CounterInc missing from %s "
             "(skipped or filtered out)" % path)

print("counter increment: %.1f ns (ceiling %.0f ns)" % (inc, ceiling))
if inc >= ceiling:
    sys.exit("FAIL: counter increment %.1f ns at or above the %.0f ns "
             "ceiling" % (inc, ceiling))
print("PASS: counter increment under the %.0f ns ceiling" % ceiling)
EOF
