#!/usr/bin/env sh
# Run the fleet-scale solver benchmarks (steady fleet with and without
# the quiescence-aware active-set engine, churning fleet) and record
# the results as machine-readable JSON at the repo root
# (BENCH_scale.json). Then enforce the active-set speedup gate: at
# 1024 machines of steady load, quiescence on must iterate at least
# MERCURY_QUIESCENCE_SPEEDUP (default 10) times faster than off.
#
#   scripts/run_bench_scale.sh [build-dir] [extra benchmark args...]
#
# Examples:
#   scripts/run_bench_scale.sh
#   scripts/run_bench_scale.sh build --benchmark_min_time=0.1
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bench="$build_dir/bench/bench_scale_fleet"
if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build_dir)" >&2
    exit 1
fi

out="$repo_root/BENCH_scale.json"
"$bench" --benchmark_format=json --benchmark_out="$out" \
    --benchmark_out_format=json "$@" >&2
echo "$out"

speedup_floor=${MERCURY_QUIESCENCE_SPEEDUP:-10}
python3 - "$out" "$speedup_floor" <<'EOF'
import json
import sys

path, floor = sys.argv[1], float(sys.argv[2])
with open(path) as handle:
    report = json.load(handle)

times = {}
for bench in report.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    name = bench["name"]
    nanos = bench["real_time"]
    if bench.get("time_unit") == "us":
        nanos *= 1e3
    elif bench.get("time_unit") == "ms":
        nanos *= 1e6
    times[name] = nanos

off = times.get("BM_SolverIterationSteadyFleet/1024/0")
on = times.get("BM_SolverIterationSteadyFleet/1024/1")
if off is None or on is None:
    sys.exit("error: BM_SolverIterationSteadyFleet/1024 missing from %s "
             "(skipped or filtered out)" % path)

speedup = off / on
print("steady 1024-machine fleet: %.1f us off, %.1f us on (%.1fx)"
      % (off / 1e3, on / 1e3, speedup))
if speedup < floor:
    sys.exit("FAIL: quiescence speedup %.1fx below the %.0fx floor"
             % (speedup, floor))
print("PASS: quiescence speedup above the %.0fx floor" % floor)
EOF
