# Regenerate the paper's Figure 5/6/7/8 plots from the bench CSV.
#
#   build/bench/bench_fig07_cpu_validation | grep -v '^#\|SUMMARY\|PAPER' \
#       > fig07.csv
#   gnuplot -e "csv='fig07.csv'; out='fig07.png'" scripts/plot_validation.gp
#
# Matches the paper's layout: utilization (left axis, %) against the
# real and emulated temperatures (right axis, degC).

if (!exists("csv")) csv = "fig07.csv"
if (!exists("out")) out = "figure.png"

set terminal pngcairo size 1000,500
set output out
set datafile separator ","
set key top left
set xlabel "Time (Seconds)"
set ylabel "Percent Utilization"
set y2label "Temperature (C)"
set yrange [0:100]
set y2range [20:40]
set ytics nomirror
set y2tics

plot csv using 1:2 skip 1 with lines lc rgb "#bbbbbb" \
         title "Utilization", \
     csv using 1:3 skip 1 axes x1y2 with lines lc rgb "#d62728" \
         title "Real", \
     csv using 1:4 skip 1 axes x1y2 with lines lc rgb "#1f77b4" \
         title "Emulated"
