#!/bin/sh
# Run every figure/table bench and collect the outputs under
# results/. Plots (if gnuplot is installed) land next to the CSVs.
set -e
BUILD=${1:-build}
OUT=${2:-results}
mkdir -p "$OUT"

for bench in "$BUILD"/bench/bench_*; do
    name=$(basename "$bench")
    echo "== $name"
    "$bench" > "$OUT/$name.txt"
done

# Figure 7: utilization + real/emulated CPU air.
grep -v '^#\|^SUMMARY\|^PAPER' "$OUT/bench_fig07_cpu_validation.txt" \
    > "$OUT/fig07.csv" || true
# Figure 11: the temperature panel.
awk '/CPU temperatures/{f=1;next} /CPU utilizations/{f=0} f && !/^#/' \
    "$OUT/bench_fig11_freon_base.txt" > "$OUT/fig11_temps.csv" || true

if command -v gnuplot >/dev/null 2>&1; then
    gnuplot -e "csv='$OUT/fig07.csv'; out='$OUT/fig07.png'" \
        scripts/plot_validation.gp || true
    gnuplot -e "csv='$OUT/fig11_temps.csv'; out='$OUT/fig11.png'" \
        scripts/plot_freon.gp || true
    echo "plots written to $OUT/"
else
    echo "gnuplot not found; CSVs are in $OUT/"
fi
