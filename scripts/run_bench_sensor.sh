#!/usr/bin/env sh
# Run the sensor-path microbenchmarks (shared-memory fast path,
# in-process dispatch, UDP loopback round trip, batched UDP reads,
# telemetry publish) and record the results as machine-readable JSON
# at the repo root (BENCH_sensor.json). Then enforce the telemetry
# plane's budget: a shared-memory readsensor() slower than
# MERCURY_SHM_BUDGET_NS (default 500 ns) fails the run.
#
#   scripts/run_bench_sensor.sh [build-dir] [extra benchmark args...]
#
# Examples:
#   scripts/run_bench_sensor.sh
#   scripts/run_bench_sensor.sh build --benchmark_min_time=0.1
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bench="$build_dir/bench/bench_micro_mercury"
if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build_dir)" >&2
    exit 1
fi

out="$repo_root/BENCH_sensor.json"
"$bench" --benchmark_format=json --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_filter='BM_ReadSensor|BM_TelemetryPublish' "$@" >&2
echo "$out"

budget_ns=${MERCURY_SHM_BUDGET_NS:-500}
python3 - "$out" "$budget_ns" <<'EOF'
import json
import sys

path, budget_ns = sys.argv[1], float(sys.argv[2])
with open(path) as handle:
    report = json.load(handle)

shm = udp = None
for bench in report.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    name = bench["name"].split("/")[0]
    nanos = bench["real_time"]
    if bench.get("time_unit") == "us":
        nanos *= 1e3
    elif bench.get("time_unit") == "ms":
        nanos *= 1e6
    if name == "BM_ReadSensorShm":
        shm = nanos
    elif name == "BM_ReadSensorUdpLoopback":
        udp = nanos

if shm is None:
    sys.exit("error: BM_ReadSensorShm missing from %s "
             "(skipped or filtered out)" % path)

print("shm readsensor: %.1f ns (budget %.0f ns)" % (shm, budget_ns))
if udp is not None:
    print("udp readsensor: %.1f ns (%.1fx slower than shm)"
          % (udp, udp / shm))
if shm > budget_ns:
    sys.exit("FAIL: shared-memory readsensor took %.1f ns, "
             "budget is %.0f ns" % (shm, budget_ns))
print("PASS: shared-memory readsensor within budget")
EOF
