#!/usr/bin/env sh
# Run the replication overhead bench and record the results as
# machine-readable JSON at the repo root (BENCH_replica.json). Then
# enforce the subsystem's acceptance gate: logging and streaming
# mutations must cost at most MERCURY_WAL_OVERHEAD_MAX (default 0.05,
# i.e. 5%) of base iteration time at 1024 machines. The WAL-only
# overhead is always gated; the full replicated overhead additionally
# needs a second core (the in-process standby otherwise competes with
# the primary for the only CPU and the number measures the scheduler,
# not the subsystem), so it is skipped with a message on 1-core hosts.
#
#   scripts/run_bench_replica.sh [build-dir] [extra bench_replica args...]
#
# Examples:
#   scripts/run_bench_replica.sh
#   scripts/run_bench_replica.sh build --iterations 300
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bench="$build_dir/bench/bench_replica"
if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build_dir)" >&2
    exit 1
fi

out="$repo_root/BENCH_replica.json"
"$bench" "$@" > "$out"
echo "$out"

overhead_max=${MERCURY_WAL_OVERHEAD_MAX:-0.05}
python3 - "$out" "$overhead_max" <<'EOF'
import json
import sys

path, ceiling = sys.argv[1], float(sys.argv[2])
with open(path) as handle:
    report = json.load(handle)

costs = {}
for bench in report.get("benchmarks", []):
    costs[bench["name"]] = bench["us_per_iteration"]

for name in ["replica_base", "replica_wal", "replica_replicated"]:
    if name not in costs:
        sys.exit("error: run %s missing from %s" % (name, path))

base = costs["replica_base"]
wal = (costs["replica_wal"] - base) / base
replicated = (costs["replica_replicated"] - base) / base
print("per-iteration: base=%.1fus wal=%.1fus replicated=%.1fus" %
      (base, costs["replica_wal"], costs["replica_replicated"]))
print("overhead: wal=%+.1f%% replicated=%+.1f%% (ceiling %.1f%%)" %
      (wal * 100, replicated * 100, ceiling * 100))

if wal > ceiling:
    sys.exit("FAIL: WAL overhead %.1f%% exceeds the %.1f%% ceiling" %
             (wal * 100, ceiling * 100))

cores = report.get("context", {}).get("cores", 0)
if cores < 2:
    print("SKIP: replicated gate needs >= 2 cores (standby thread), "
          "host has %d" % cores)
    sys.exit(0)

if replicated > ceiling:
    sys.exit("FAIL: replication overhead %.1f%% exceeds the %.1f%% "
             "ceiling" % (replicated * 100, ceiling * 100))
print("PASS: steady-state replication clears the %.1f%% ceiling" %
      (ceiling * 100))
EOF
