#!/usr/bin/env sh
# Run the Mercury microbenchmarks and record the results as
# machine-readable JSON at the repo root (BENCH_micro.json), so the
# performance trajectory is tracked across PRs. See
# docs/performance.md for how to read the file.
#
#   scripts/run_bench_micro.sh [build-dir] [extra benchmark args...]
#
# Examples:
#   scripts/run_bench_micro.sh
#   scripts/run_bench_micro.sh build --benchmark_filter=BM_SolverIteration
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bench="$build_dir/bench/bench_micro_mercury"
if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build_dir)" >&2
    exit 1
fi

out="$repo_root/BENCH_micro.json"
"$bench" --benchmark_format=json --benchmark_out="$out" \
    --benchmark_out_format=json "$@" >&2
echo "$out"
