#!/usr/bin/env sh
# Run the request-plane throughput bench and record the results as
# machine-readable JSON at the repo root (BENCH_rpc.json). Then
# enforce the sharding payoff: 4 serve workers must deliver at least
# MERCURY_RPC_SPEEDUP_MIN (default 2.0) times the single-worker
# request rate. The gate is skipped (with a message) on hosts with
# fewer than 4 cores, where extra workers have nowhere to run; the
# batched-vs-single-syscall ratio is always reported.
#
#   scripts/run_bench_rpc.sh [build-dir] [extra bench_rpc args...]
#
# Examples:
#   scripts/run_bench_rpc.sh
#   scripts/run_bench_rpc.sh build --seconds 1.0
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bench="$build_dir/bench/bench_rpc"
if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build_dir)" >&2
    exit 1
fi

out="$repo_root/BENCH_rpc.json"
"$bench" "$@" > "$out"
echo "$out"

speedup_min=${MERCURY_RPC_SPEEDUP_MIN:-2.0}
python3 - "$out" "$speedup_min" <<'EOF'
import json
import sys

path, floor = sys.argv[1], float(sys.argv[2])
with open(path) as handle:
    report = json.load(handle)

rates = {}
for bench in report.get("benchmarks", []):
    key = (bench["serve_threads"], bench["batch_syscalls"])
    rates[key] = bench["requests_per_second"]

for key in [(1, True), (4, True), (1, False), (4, False)]:
    if key not in rates:
        sys.exit("error: run w=%d batch=%s missing from %s" %
                 (key[0], key[1], path))

batch_ratio = rates[(4, True)] / rates[(4, False)]
print("requests/s: w1=%.0f w2=%.0f w4=%.0f (batched syscalls)" %
      (rates[(1, True)], rates.get((2, True), 0.0), rates[(4, True)]))
print("batched vs single syscalls at 4 workers: %.2fx" % batch_ratio)

cores = report.get("context", {}).get("cores", 0)
if cores < 4:
    print("SKIP: speedup gate needs >= 4 cores, host has %d" % cores)
    sys.exit(0)

speedup = rates[(4, True)] / rates[(1, True)]
print("4-worker speedup: %.2fx (floor %.2fx)" % (speedup, floor))
if speedup < floor:
    sys.exit("FAIL: 4 workers only %.2fx over 1 worker "
             "(floor %.2fx)" % (speedup, floor))
print("PASS: sharded request plane clears the %.2fx floor" % floor)
EOF
